// Randomized equivalence for the incremental-refactorization primitive:
// every Sherman–Morrison solve through LuWorkspace must match a full LU
// refactorization of the explicitly updated matrix, and the near-singular
// guard must refuse (rather than silently degrade) exactly when the
// denominator collapses.
#include "analog/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace memstress::analog {
namespace {

// A diagonally dominant base matrix: the shape MNA stamps produce (strong
// diagonal conductances, weaker couplings), always well conditioned.
DenseMatrix random_spd_ish(Rng& rng, std::size_t n) {
  DenseMatrix m(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) m.at(r, c) = rng.uniform(-1.0, 1.0);
    m.at(r, r) += 4.0;
  }
  return m;
}

// The sparse rank-1 directions the batched solver uses: a two-terminal
// conductance stamp, u = e_a - e_b (or a grounded e_a).
std::vector<std::pair<std::size_t, double>> random_stamp(Rng& rng,
                                                         std::size_t n) {
  std::vector<std::pair<std::size_t, double>> u;
  const std::size_t a = rng.below(n);
  const std::size_t b = rng.below(n);
  u.emplace_back(a, 1.0);
  if (b != a) u.emplace_back(b, -1.0);
  return u;
}

DenseMatrix apply_rank1(const DenseMatrix& base, double scale,
                        const std::vector<std::pair<std::size_t, double>>& u) {
  const std::size_t n = base.size();
  DenseMatrix updated(n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) updated.at(r, c) = base.at(r, c);
  for (const auto& [ri, ci] : u)
    for (const auto& [rj, cj] : u) updated.add(ri, rj, scale * ci * cj);
  return updated;
}

TEST(LuWorkspaceRank1, MatchesFullRefactorizationAcrossRandomStamps) {
  Rng rng(20260809);
  int solved = 0;
  for (int trial = 0; trial < 1000; ++trial) {
    const std::size_t n = 2 + rng.below(12);
    const DenseMatrix base = random_spd_ish(rng, n);
    const auto u = random_stamp(rng, n);
    const double scale = rng.uniform(-0.5, 3.0);

    LuWorkspace ws;
    ASSERT_TRUE(ws.factor(base));
    ws.set_update_direction(u);

    std::vector<double> b(n);
    for (auto& x : b) x = rng.uniform(-5.0, 5.0);

    std::vector<double> x_sm = b;
    if (!ws.solve_updated(scale, x_sm)) continue;  // guard tripped: caller
                                                   // would refactor instead
    const DenseMatrix updated = apply_rank1(base, scale, u);
    LuSolver full;
    ASSERT_TRUE(full.factor(updated));
    std::vector<double> x_full = b;
    full.solve(x_full);

    for (std::size_t i = 0; i < n; ++i)
      ASSERT_NEAR(x_sm[i], x_full[i], 1e-10)
          << "trial " << trial << " n=" << n << " scale=" << scale;
    ++solved;
  }
  // The guard exists for pathological updates; random well-conditioned
  // stamps must overwhelmingly take the fast path.
  EXPECT_GT(solved, 950);
}

TEST(LuWorkspaceRank1, ZeroScaleIsExactBaseSolve) {
  Rng rng(7);
  const DenseMatrix base = random_spd_ish(rng, 6);
  LuWorkspace ws;
  ASSERT_TRUE(ws.factor(base));
  ws.set_update_direction({{1, 1.0}, {3, -1.0}});
  std::vector<double> b{1, -2, 3, -4, 5, -6};
  std::vector<double> via_updated = b;
  ASSERT_TRUE(ws.solve_updated(0.0, via_updated));
  std::vector<double> via_base = b;
  ws.solve(via_base);
  for (std::size_t i = 0; i < b.size(); ++i)
    EXPECT_DOUBLE_EQ(via_updated[i], via_base[i]);
}

TEST(LuWorkspaceRank1, NearSingularUpdateTripsGuard) {
  // Identity base with u = e_0: z = u, u^T z = 1, so scale -> -1 drives the
  // updated matrix singular and the denominator 1 + scale to zero. The
  // solve must refuse instead of dividing by ~0.
  DenseMatrix base(3);
  for (std::size_t i = 0; i < 3; ++i) base.at(i, i) = 1.0;
  LuWorkspace ws;
  ASSERT_TRUE(ws.factor(base));
  ws.set_update_direction({{0, 1.0}});

  std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_FALSE(ws.solve_updated(-1.0, b));
  b = {1.0, 2.0, 3.0};
  EXPECT_FALSE(ws.solve_updated(-1.0 + 1e-12, b));
  // Clearly away from the singularity the solve works and matches the
  // explicit inverse: (I + e0 e0^T)^{-1} halves the first component.
  b = {1.0, 2.0, 3.0};
  ASSERT_TRUE(ws.solve_updated(1.0, b));
  EXPECT_NEAR(b[0], 0.5, 1e-14);
  EXPECT_NEAR(b[1], 2.0, 1e-14);
  EXPECT_NEAR(b[2], 3.0, 1e-14);
}

TEST(LuWorkspaceRank1, GuardFallbackRefactorizationRecovers) {
  // When the guard trips, the documented protocol is a full refactor at the
  // lane's value; verify the refactored workspace then serves the system.
  Rng rng(31);
  const DenseMatrix base = random_spd_ish(rng, 5);
  LuWorkspace ws;
  ASSERT_TRUE(ws.factor(base));
  ws.set_update_direction({{2, 1.0}});

  // Hunt a scale that lands inside the guard band for this base.
  std::vector<double> probe(5, 1.0);
  double bad_scale = 0.0;
  bool found = false;
  // z = A^{-1} e_2; the singular scale is -1 / z[2].
  std::vector<double> z(5, 0.0);
  z[2] = 1.0;
  ws.solve(z);
  if (z[2] != 0.0) {
    bad_scale = -1.0 / z[2];
    std::vector<double> b = probe;
    found = !ws.solve_updated(bad_scale, b);
  }
  ASSERT_TRUE(found) << "guard did not trip at the analytic singular scale";

  const DenseMatrix updated = apply_rank1(base, bad_scale, {{2, 1.0}});
  LuWorkspace fresh;
  // The updated matrix is genuinely singular here, so the full factor is
  // allowed to report it; either outcome is sound, silence was the bug.
  if (fresh.factor(updated)) {
    std::vector<double> b = probe;
    fresh.solve(b);
    for (double x : b) EXPECT_TRUE(std::isfinite(x));
  }
}

TEST(LuWorkspaceRank1, BlockedSolveIsBitwiseIdenticalToScalarColumns) {
  // The blocked multi-RHS path promises more than closeness: each column
  // must be *bit-for-bit* the scalar solve of that RHS, or the batched
  // solver's verdicts could drift from the exact path's with cluster size.
  Rng rng(20260810);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 2 + rng.below(12);
    const std::size_t nrhs = 1 + rng.below(9);
    const DenseMatrix base = random_spd_ish(rng, n);
    LuSolver lu;
    ASSERT_TRUE(lu.factor(base));

    std::vector<double> block(n * nrhs);
    for (auto& x : block) x = rng.uniform(-5.0, 5.0);
    std::vector<std::vector<double>> columns(nrhs, std::vector<double>(n));
    for (std::size_t k = 0; k < nrhs; ++k)
      for (std::size_t i = 0; i < n; ++i) columns[k][i] = block[i * nrhs + k];

    lu.solve_block(block.data(), nrhs);
    for (std::size_t k = 0; k < nrhs; ++k) {
      lu.solve(columns[k]);
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(block[i * nrhs + k], columns[k][i])
            << "trial " << trial << " n=" << n << " nrhs=" << nrhs
            << " col=" << k << " row=" << i;
    }
  }
}

TEST(LuWorkspaceRank1, BlockedUpdatedSolveMatchesPerLanePath) {
  // solve_updated_block must agree with the scalar solve_updated per
  // column — including which columns the Sherman–Morrison guard refuses.
  Rng rng(20260811);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 3 + rng.below(10);
    const std::size_t nrhs = 1 + rng.below(7);
    const DenseMatrix base = random_spd_ish(rng, n);
    const auto u = random_stamp(rng, n);
    LuWorkspace ws;
    ASSERT_TRUE(ws.factor(base));
    ws.set_update_direction(u);

    std::vector<double> scales(nrhs);
    for (auto& s : scales) s = rng.uniform(-0.5, 3.0);
    if (nrhs > 1) scales[rng.below(nrhs)] = 0.0;  // exercise the base path

    std::vector<double> block(n * nrhs);
    for (auto& x : block) x = rng.uniform(-5.0, 5.0);
    std::vector<std::vector<double>> columns(nrhs, std::vector<double>(n));
    for (std::size_t k = 0; k < nrhs; ++k)
      for (std::size_t i = 0; i < n; ++i) columns[k][i] = block[i * nrhs + k];

    std::vector<unsigned char> ok(nrhs, 0);
    ws.solve_updated_block(scales.data(), block.data(), nrhs, ok.data());
    for (std::size_t k = 0; k < nrhs; ++k) {
      const bool scalar_ok = ws.solve_updated(scales[k], columns[k]);
      ASSERT_EQ(ok[k] != 0, scalar_ok) << "trial " << trial << " col " << k;
      if (!scalar_ok) continue;
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(block[i * nrhs + k], columns[k][i])
            << "trial " << trial << " n=" << n << " nrhs=" << nrhs
            << " col=" << k << " row=" << i;
    }
  }
}

TEST(LuWorkspaceRank1, RowNormsReflectBaseRows) {
  DenseMatrix base(2);
  base.at(0, 0) = 2.0;
  base.at(0, 1) = -0.5;
  base.at(1, 0) = 1e-6;  // high-impedance row: norm must stay at its scale
  base.at(1, 1) = -1e-7;
  LuWorkspace ws;
  ASSERT_TRUE(ws.factor(base));
  EXPECT_DOUBLE_EQ(ws.row_norm(0), 2.0);
  EXPECT_DOUBLE_EQ(ws.row_norm(1), 1e-6);
}

}  // namespace
}  // namespace memstress::analog
