#include "analog/measure.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace memstress::analog {
namespace {

Trace ramp_trace() {
  Trace t({"sig"});
  // 0 V at t=0 rising linearly to 1.8 V at t=10ns, then flat.
  for (int i = 0; i <= 20; ++i) {
    const double time = i * 1e-9;
    const double v = time <= 10e-9 ? 1.8 * time / 10e-9 : 1.8;
    t.append(time, {v});
  }
  return t;
}

TEST(Measure, DigitalAtUsesHalfVdd) {
  const Trace t = ramp_trace();
  EXPECT_FALSE(digital_at(t, "sig", 2e-9, 1.8));
  EXPECT_TRUE(digital_at(t, "sig", 8e-9, 1.8));
}

TEST(Measure, CrossTimeRising) {
  const Trace t = ramp_trace();
  const auto when = cross_time(t, "sig", 0.9, true, 0.0);
  ASSERT_TRUE(when.has_value());
  EXPECT_NEAR(*when, 5e-9, 1e-10);
}

TEST(Measure, CrossTimeRespectsAfter) {
  const Trace t = ramp_trace();
  EXPECT_FALSE(cross_time(t, "sig", 0.9, true, 12e-9).has_value());
}

TEST(Measure, CrossTimeFallingAbsentOnRamp) {
  const Trace t = ramp_trace();
  EXPECT_FALSE(cross_time(t, "sig", 0.9, false, 0.0).has_value());
}

TEST(Measure, MinMaxBetween) {
  const Trace t = ramp_trace();
  EXPECT_NEAR(min_between(t, "sig", 2e-9, 6e-9), 1.8 * 0.2, 1e-9);
  EXPECT_NEAR(max_between(t, "sig", 2e-9, 6e-9), 1.8 * 0.6, 1e-9);
  EXPECT_NEAR(max_between(t, "sig", 0.0, 20e-9), 1.8, 1e-12);
}

TEST(Measure, RenderWaveformsProducesRowPerSignal) {
  Trace t({"a", "b"});
  t.append(0.0, {0.0, 1.8});
  t.append(10e-9, {0.0, 1.8});
  const std::string text = render_waveforms(t, {"a", "b"}, 0.0, 10e-9, 1.8, 16);
  EXPECT_NE(text.find("a |________________|"), std::string::npos);
  EXPECT_NE(text.find("b |----------------|"), std::string::npos);
}

TEST(Measure, RenderWaveformsMarksMidRail) {
  Trace t({"m"});
  t.append(0.0, {0.9});
  t.append(10e-9, {0.9});
  const std::string text = render_waveforms(t, {"m"}, 0.0, 10e-9, 1.8, 8);
  EXPECT_NE(text.find("xxxxxxxx"), std::string::npos);
}

TEST(Measure, RenderWaveformsValidatesArgs) {
  Trace t({"a"});
  t.append(0.0, {0.0});
  t.append(1e-9, {0.0});
  EXPECT_THROW(render_waveforms(t, {"a"}, 0.0, 1e-9, 1.8, 4), Error);
  EXPECT_THROW(render_waveforms(t, {"a"}, 1e-9, 1e-9, 1.8, 16), Error);
}

}  // namespace
}  // namespace memstress::analog
