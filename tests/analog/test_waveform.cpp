#include "analog/waveform.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace memstress::analog {
namespace {

TEST(PwlWaveform, DcHoldsValueEverywhere) {
  const PwlWaveform w = PwlWaveform::dc(1.8);
  EXPECT_DOUBLE_EQ(w.value(-1.0), 1.8);
  EXPECT_DOUBLE_EQ(w.value(0.0), 1.8);
  EXPECT_DOUBLE_EQ(w.value(1e9), 1.8);
}

TEST(PwlWaveform, InterpolatesBetweenBreakpoints) {
  PwlWaveform w;
  w.add_point(0.0, 0.0);
  w.add_point(10e-9, 1.0);
  EXPECT_DOUBLE_EQ(w.value(5e-9), 0.5);
  EXPECT_DOUBLE_EQ(w.value(2.5e-9), 0.25);
}

TEST(PwlWaveform, ClampsOutsideRange) {
  PwlWaveform w;
  w.add_point(1e-9, 0.3);
  w.add_point(2e-9, 0.9);
  EXPECT_DOUBLE_EQ(w.value(0.0), 0.3);
  EXPECT_DOUBLE_EQ(w.value(5e-9), 0.9);
}

TEST(PwlWaveform, RejectsTimeGoingBackwards) {
  PwlWaveform w;
  w.add_point(5e-9, 1.0);
  EXPECT_THROW(w.add_point(1e-9, 0.0), Error);
}

TEST(PwlWaveform, StepToHoldsThenRamps) {
  PwlWaveform w;
  w.add_point(0.0, 0.0);
  w.step_to(10e-9, 1.8, 1e-9);
  EXPECT_DOUBLE_EQ(w.value(9e-9), 0.0);
  EXPECT_DOUBLE_EQ(w.value(10e-9), 0.0);
  EXPECT_NEAR(w.value(10.5e-9), 0.9, 1e-9);
  EXPECT_NEAR(w.value(11e-9), 1.8, 1e-9);
}

TEST(PwlWaveform, StepToOnEmptyWaveformSetsLevel) {
  PwlWaveform w;
  w.step_to(2e-9, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(w.value(0.0), 1.0);
  EXPECT_DOUBLE_EQ(w.value(3e-9), 1.0);
}

TEST(PwlWaveform, VerticalStepAtSameTime) {
  PwlWaveform w;
  w.add_point(1e-9, 0.0);
  w.add_point(1e-9, 1.0);  // zero-width step is allowed
  EXPECT_DOUBLE_EQ(w.value(0.5e-9), 0.0);
  EXPECT_DOUBLE_EQ(w.value(1.5e-9), 1.0);
}

TEST(Trace, AppendAndInterpolate) {
  Trace trace({"a", "b"});
  trace.append(0.0, {0.0, 1.0});
  trace.append(1e-9, {1.0, 3.0});
  EXPECT_DOUBLE_EQ(trace.value_at("a", 0.5e-9), 0.5);
  EXPECT_DOUBLE_EQ(trace.value_at("b", 0.5e-9), 2.0);
  EXPECT_DOUBLE_EQ(trace.value_at("a", 5e-9), 1.0);  // clamped
}

TEST(Trace, SignalIndexLookup) {
  Trace trace({"x", "y", "z"});
  EXPECT_EQ(trace.signal_index("y"), 1u);
  EXPECT_THROW(trace.signal_index("nope"), Error);
}

TEST(Trace, RejectsArityMismatch) {
  Trace trace({"a"});
  EXPECT_THROW(trace.append(0.0, {1.0, 2.0}), Error);
}

TEST(Trace, RejectsNonMonotonicTime) {
  Trace trace({"a"});
  trace.append(1e-9, {0.0});
  EXPECT_THROW(trace.append(0.5e-9, {0.0}), Error);
}

}  // namespace
}  // namespace memstress::analog
