#include "analog/mos_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace memstress::analog {
namespace {

TEST(MosModel, NmosCutoffCurrentIsNegligible) {
  const MosParams p = nmos_018(2.0);
  const double i = mos_current(MosType::Nmos, p, 1.8, 0.0, 0.0);
  EXPECT_LT(std::fabs(i), 1e-6);  // leakage floor only
  EXPECT_GT(i, 0.0);              // smooth model keeps a tiny positive leak
}

TEST(MosModel, NmosSaturationQuadraticInOverdrive) {
  const MosParams p = nmos_018(2.0);
  // Deep saturation: Ids ~ overdrive^2 (lambda introduces a small deviation).
  const double i1 = mos_current(MosType::Nmos, p, 1.8, p.vt + 0.4, 0.0);
  const double i2 = mos_current(MosType::Nmos, p, 1.8, p.vt + 0.8, 0.0);
  EXPECT_NEAR(i2 / i1, 4.0, 0.3);
}

TEST(MosModel, NmosTriodeLinearInSmallVds) {
  const MosParams p = nmos_018(2.0);
  const double i1 = mos_current(MosType::Nmos, p, 0.05, 1.8, 0.0);
  const double i2 = mos_current(MosType::Nmos, p, 0.10, 1.8, 0.0);
  EXPECT_NEAR(i2 / i1, 2.0, 0.1);
}

TEST(MosModel, SourceDrainSymmetry) {
  const MosParams p = nmos_018(2.0);
  // Swapping drain and source must exactly negate the current.
  const double fwd = mos_current(MosType::Nmos, p, 1.0, 1.8, 0.2);
  const double rev = mos_current(MosType::Nmos, p, 0.2, 1.8, 1.0);
  EXPECT_DOUBLE_EQ(fwd, -rev);
}

TEST(MosModel, PmosMirrorsNmos) {
  const MosParams pn = nmos_018(2.0);
  MosParams pp = pn;  // same kp so the mirror is exact
  const double in = mos_current(MosType::Nmos, pn, 1.0, 1.8, 0.0);
  const double ip = mos_current(MosType::Pmos, pp, -1.0, -1.8, 0.0);
  EXPECT_DOUBLE_EQ(in, -ip);
}

TEST(MosModel, PmosConductsWithGateLow) {
  const MosParams p = pmos_018(4.0);
  // Source at Vdd, gate at 0, drain at 0: strongly on, current flows s->d,
  // i.e. the d->s current is negative.
  const double i = mos_current(MosType::Pmos, p, 0.0, 0.0, 1.8);
  EXPECT_LT(i, -1e-4);
}

TEST(MosModel, PmosOffWithGateHigh) {
  const MosParams p = pmos_018(4.0);
  const double i = mos_current(MosType::Pmos, p, 0.0, 1.8, 1.8);
  EXPECT_LT(std::fabs(i), 1e-6);
}

TEST(MosModel, CurrentContinuousAcrossCutoff) {
  const MosParams p = nmos_018(2.0);
  // Sweep the gate through threshold; adjacent samples must stay close
  // (the smoothing guarantees C1 continuity).
  double prev = mos_current(MosType::Nmos, p, 1.8, 0.0, 0.0);
  for (double vg = 0.01; vg <= 1.2; vg += 0.01) {
    const double cur = mos_current(MosType::Nmos, p, 1.8, vg, 0.0);
    EXPECT_LT(std::fabs(cur - prev), 2e-4) << "jump at vg = " << vg;
    EXPECT_GE(cur, prev - 1e-12) << "non-monotone at vg = " << vg;
    prev = cur;
  }
}

TEST(MosModel, CurrentContinuousAcrossSaturationBoundary) {
  const MosParams p = nmos_018(2.0);
  double prev = mos_current(MosType::Nmos, p, 0.0, 1.8, 0.0);
  for (double vd = 0.01; vd <= 1.8; vd += 0.01) {
    const double cur = mos_current(MosType::Nmos, p, vd, 1.8, 0.0);
    EXPECT_LT(std::fabs(cur - prev), 5e-5) << "jump at vd = " << vd;
    prev = cur;
  }
}

TEST(MosModel, DriveCurrentCollapsesFasterThanLinearWithVdd) {
  // The VLV premise: I(Vdd)/I(Vdd/2) > 2 because drive ~ (Vdd - Vt)^2,
  // while a resistive bridge only scales linearly. This ratio is what makes
  // low-voltage testing expose high-ohmic bridges.
  const MosParams p = nmos_018(2.0);
  const double i_nom = mos_current(MosType::Nmos, p, 1.8, 1.8, 0.0);
  const double i_vlv = mos_current(MosType::Nmos, p, 1.0, 1.0, 0.0);
  EXPECT_GT(i_nom / i_vlv, 1.8 / 1.0 * 1.5);
}

TEST(MosModel, DefaultParamFactoriesDiffer) {
  const MosParams n = nmos_018(1.0);
  const MosParams pm = pmos_018(1.0);
  EXPECT_GT(n.kp, pm.kp);  // electrons beat holes
  EXPECT_GT(n.vt, 0.0);
}

}  // namespace
}  // namespace memstress::analog
