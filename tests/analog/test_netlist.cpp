#include "analog/netlist.hpp"

#include <gtest/gtest.h>

#include "analog/engine.hpp"
#include "util/error.hpp"

namespace memstress::analog {
namespace {

TEST(Netlist, GroundHasTwoNames) {
  Netlist nl;
  EXPECT_EQ(nl.node("0"), kGround);
  EXPECT_EQ(nl.node("gnd"), kGround);
  EXPECT_EQ(nl.node_count(), 1u);
}

TEST(Netlist, NodeCreationIsIdempotent) {
  Netlist nl;
  const NodeId a = nl.node("a");
  EXPECT_EQ(nl.node("a"), a);
  EXPECT_EQ(nl.node_count(), 2u);
  EXPECT_EQ(nl.node_name(a), "a");
}

TEST(Netlist, FindNodeRequiresExistence) {
  Netlist nl;
  nl.node("exists");
  EXPECT_NO_THROW(nl.find_node("exists"));
  EXPECT_THROW(nl.find_node("missing"), Error);
  EXPECT_TRUE(nl.has_node("exists"));
  EXPECT_FALSE(nl.has_node("missing"));
}

TEST(Netlist, DeviceValidation) {
  Netlist nl;
  const NodeId a = nl.node("a");
  EXPECT_THROW(nl.add_resistor("r", a, kGround, 0.0), Error);
  EXPECT_THROW(nl.add_resistor("r", a, kGround, -5.0), Error);
  EXPECT_THROW(nl.add_capacitor("c", a, kGround, 0.0), Error);
  EXPECT_THROW(nl.add_breakdown("b", a, kGround, 0.0, 1.0), Error);
  EXPECT_THROW(nl.add_breakdown("b", a, kGround, 1e3, -1.0), Error);
}

TEST(Netlist, JointsAreNamedResistors) {
  Netlist nl;
  const NodeId a = nl.node("a");
  const NodeId b = nl.node("b");
  nl.add_joint("j1", a, b);
  ASSERT_EQ(nl.resistors().size(), 1u);
  EXPECT_DOUBLE_EQ(nl.resistors()[0].ohms, Netlist::kJointOhms);
  EXPECT_TRUE(nl.has_joint("j1"));
  EXPECT_FALSE(nl.has_joint("j2"));
  EXPECT_EQ(nl.joint_names(), std::vector<std::string>{"j1"});
}

TEST(Netlist, JointResistanceCanBeRaised) {
  Netlist nl;
  nl.add_joint("j", nl.node("a"), nl.node("b"));
  nl.set_joint_resistance("j", 5e6);
  EXPECT_DOUBLE_EQ(nl.resistors()[0].ohms, 5e6);
  EXPECT_THROW(nl.set_joint_resistance("nope", 1e3), Error);
  EXPECT_THROW(nl.set_joint_resistance("j", 0.0), Error);
}

TEST(Netlist, DuplicateJointRejected) {
  Netlist nl;
  nl.add_joint("j", nl.node("a"), nl.node("b"));
  EXPECT_THROW(nl.add_joint("j", nl.node("c"), nl.node("d")), Error);
}

TEST(Netlist, VsourceWaveReplaceable) {
  Netlist nl;
  nl.add_vsource("V", nl.node("x"), kGround, PwlWaveform::dc(1.0));
  nl.set_vsource_wave("V", PwlWaveform::dc(2.5));
  EXPECT_DOUBLE_EQ(nl.vsources()[0].wave.value(0.0), 2.5);
  EXPECT_THROW(nl.set_vsource_wave("missing", PwlWaveform::dc(0.0)), Error);
}

TEST(Netlist, CopyIsIndependent) {
  // The whole defect-injection flow relies on cheap value copies.
  Netlist original;
  original.add_joint("j", original.node("a"), original.node("b"));
  Netlist copy = original;
  copy.set_joint_resistance("j", 1e6);
  copy.add_resistor("extra", copy.node("a"), kGround, 10.0);
  EXPECT_DOUBLE_EQ(original.resistors()[0].ohms, Netlist::kJointOhms);
  EXPECT_EQ(original.resistors().size(), 1u);
  EXPECT_EQ(copy.resistors().size(), 2u);
}

TEST(BreakdownResistor, CurrentIsZeroBelowThreshold) {
  BreakdownResistor br{"b", 0, 0, 1e3, 1.5, 0.01};
  EXPECT_NEAR(br.current(0.0), 0.0, 1e-12);
  EXPECT_LT(std::abs(br.current(1.0)), 1e-6);
  EXPECT_LT(std::abs(br.current(-1.0)), 1e-6);
}

TEST(BreakdownResistor, OhmicAboveThreshold) {
  BreakdownResistor br{"b", 0, 0, 1e3, 1.5, 0.01};
  EXPECT_NEAR(br.current(2.5), 1.0 / 1e3, 1e-5);   // (2.5-1.5)/1k
  EXPECT_NEAR(br.current(-2.5), -1.0 / 1e3, 1e-5); // symmetric
}

TEST(BreakdownResistor, SmoothAcrossKink) {
  BreakdownResistor br{"b", 0, 0, 1e3, 1.5, 0.01};
  double prev = br.current(1.3);
  for (double v = 1.3; v <= 1.7; v += 0.001) {
    const double cur = br.current(v);
    EXPECT_GE(cur, prev - 1e-12);           // monotone
    EXPECT_LT(cur - prev, 2e-6) << "at " << v;  // no jumps
    prev = cur;
  }
}

TEST(BreakdownResistor, InCircuitDividerConductsOnlyAboveVbd) {
  // Supply -- breakdown(1.2 V, 200 ohm) -- node -- 1 kohm -- gnd.
  for (const double supply : {1.0, 1.8}) {
    Netlist nl;
    const NodeId vin = nl.node("vin");
    const NodeId mid = nl.node("mid");
    nl.add_vsource("V", vin, kGround, PwlWaveform::dc(supply));
    nl.add_breakdown("BD", vin, mid, 200.0, 1.2);
    nl.add_resistor("R", mid, kGround, 1000.0);
    Simulator sim(nl);
    const Trace trace = sim.run({.t_stop = 5e-9, .dt = 0.25e-9}, {"mid"});
    const double v_mid = trace.value_at("mid", 5e-9);
    if (supply < 1.2) {
      EXPECT_LT(v_mid, 0.01);  // no conduction below breakdown
    } else {
      // I = (1.8 - mid - 1.2)/200 = mid/1000 -> mid = 0.5.
      EXPECT_NEAR(v_mid, 0.5, 0.01);
    }
  }
}

}  // namespace
}  // namespace memstress::analog
