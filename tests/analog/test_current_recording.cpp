// Branch-current recording ("I(NAME)" record entries) — the facility the
// Iddq measurement is built on.
#include <gtest/gtest.h>

#include "analog/engine.hpp"
#include "util/error.hpp"

namespace memstress::analog {
namespace {

TEST(CurrentRecording, OhmsLawThroughASource) {
  Netlist nl;
  const NodeId vin = nl.node("vin");
  nl.add_vsource("V1", vin, kGround, PwlWaveform::dc(2.0));
  nl.add_resistor("R1", vin, kGround, 1000.0);
  Simulator sim(nl);
  const Trace trace = sim.run({.t_stop = 5e-9, .dt = 0.5e-9}, {"I(V1)"});
  // Conventional current out of the positive terminal: 2 V / 1 kOhm = 2 mA.
  EXPECT_NEAR(trace.value_at("I(V1)", 5e-9), 2e-3, 1e-8);
}

TEST(CurrentRecording, SeriesSourcesShareTheCurrent) {
  // vin -- R -- mid, with a second source from mid to ground: both branch
  // currents must match the loop current.
  Netlist nl;
  const NodeId vin = nl.node("vin");
  const NodeId mid = nl.node("mid");
  nl.add_vsource("VA", vin, kGround, PwlWaveform::dc(3.0));
  nl.add_vsource("VB", mid, kGround, PwlWaveform::dc(1.0));
  nl.add_resistor("R1", vin, mid, 2000.0);
  Simulator sim(nl);
  const Trace trace =
      sim.run({.t_stop = 5e-9, .dt = 0.5e-9}, {"I(VA)", "I(VB)"});
  // Loop current = (3 - 1) / 2k = 1 mA; VA sources it, VB sinks it.
  EXPECT_NEAR(trace.value_at("I(VA)", 5e-9), 1e-3, 1e-8);
  EXPECT_NEAR(trace.value_at("I(VB)", 5e-9), -1e-3, 1e-8);
}

TEST(CurrentRecording, CapacitorChargingCurrentDecays) {
  Netlist nl;
  const NodeId vin = nl.node("vin");
  const NodeId out = nl.node("out");
  PwlWaveform step;
  step.add_point(0.0, 0.0);
  step.add_point(1e-12, 1.0);
  nl.add_vsource("V1", vin, kGround, step);
  nl.add_resistor("R1", vin, out, 1000.0);
  nl.add_capacitor("C1", out, kGround, 1e-12);  // tau = 1 ns
  Simulator sim(nl);
  const Trace trace = sim.run({.t_stop = 6e-9, .dt = 0.02e-9}, {"I(V1)"});
  const double early = trace.value_at("I(V1)", 0.1e-9);
  const double late = trace.value_at("I(V1)", 6e-9);
  EXPECT_GT(early, 5e-4);       // ~1 mA at the step
  EXPECT_LT(late, 1e-5);        // quiescent: capacitor full
  EXPECT_GT(late, -1e-6);       // and not negative
}

TEST(CurrentRecording, MixedWithNodeVoltages) {
  Netlist nl;
  const NodeId vin = nl.node("vin");
  nl.add_vsource("V1", vin, kGround, PwlWaveform::dc(1.0));
  nl.add_resistor("R1", vin, kGround, 500.0);
  Simulator sim(nl);
  const Trace trace = sim.run({.t_stop = 2e-9, .dt = 0.5e-9}, {"vin", "I(V1)"});
  EXPECT_NEAR(trace.value_at("vin", 2e-9), 1.0, 1e-9);
  EXPECT_NEAR(trace.value_at("I(V1)", 2e-9), 2e-3, 1e-8);
}

TEST(CurrentRecording, UnknownSourceRejected) {
  Netlist nl;
  nl.add_vsource("V1", nl.node("vin"), kGround, PwlWaveform::dc(1.0));
  nl.add_resistor("R1", nl.node("vin"), kGround, 500.0);
  Simulator sim(nl);
  EXPECT_THROW(sim.run({.t_stop = 1e-9, .dt = 0.5e-9}, {"I(NOPE)"}), Error);
}

TEST(CurrentRecording, NodeNamedLikeCurrentStillResolves) {
  // A node whose *name* looks like a current request must not be shadowed:
  // the I(...) syntax only matches existing sources.
  Netlist nl;
  nl.add_vsource("V1", nl.node("vin"), kGround, PwlWaveform::dc(1.0));
  nl.add_resistor("R1", nl.node("vin"), kGround, 500.0);
  Simulator sim(nl);
  // "I(V1)" resolves to the source current even though no node is named so.
  EXPECT_NO_THROW(sim.run({.t_stop = 1e-9, .dt = 0.5e-9}, {"I(V1)"}));
}

}  // namespace
}  // namespace memstress::analog
