// DC operating-point solves.
#include <gtest/gtest.h>

#include "analog/engine.hpp"
#include "util/error.hpp"

namespace memstress::analog {
namespace {

TEST(SolveDc, ResistiveDivider) {
  Netlist nl;
  const NodeId vin = nl.node("vin");
  const NodeId mid = nl.node("mid");
  nl.add_vsource("V1", vin, kGround, PwlWaveform::dc(2.0));
  nl.add_resistor("R1", vin, mid, 1000.0);
  nl.add_resistor("R2", mid, kGround, 3000.0);
  Simulator sim(nl);
  const Trace dc = sim.solve_dc({"mid", "I(V1)"});
  EXPECT_NEAR(dc.value_at("mid", 0.0), 1.5, 1e-6);
  EXPECT_NEAR(dc.value_at("I(V1)", 0.0), 0.5e-3, 1e-9);
}

TEST(SolveDc, CapacitorIsOpenAtDc) {
  Netlist nl;
  const NodeId vin = nl.node("vin");
  const NodeId mid = nl.node("mid");
  nl.add_vsource("V1", vin, kGround, PwlWaveform::dc(1.8));
  nl.add_resistor("R1", vin, mid, 1000.0);
  nl.add_capacitor("C1", mid, kGround, 1e-12);
  Simulator sim(nl);
  // No DC path to ground except gmin: mid floats up to the source level.
  const Trace dc = sim.solve_dc({"mid"});
  EXPECT_NEAR(dc.value_at("mid", 0.0), 1.8, 1e-3);
}

TEST(SolveDc, InverterOperatingPoints) {
  for (const double vin_level : {0.0, 1.8}) {
    Netlist nl;
    const NodeId vdd = nl.node("vdd");
    const NodeId in = nl.node("in");
    const NodeId out = nl.node("out");
    nl.add_vsource("VDD", vdd, kGround, PwlWaveform::dc(1.8));
    nl.add_vsource("VIN", in, kGround, PwlWaveform::dc(vin_level));
    nl.add_mosfet("MP", MosType::Pmos, out, in, vdd, pmos_018(4.0));
    nl.add_mosfet("MN", MosType::Nmos, out, in, kGround, nmos_018(2.0));
    Simulator sim(nl);
    const Trace dc = sim.solve_dc({"out"});
    if (vin_level < 0.9) {
      EXPECT_GT(dc.value_at("out", 0.0), 1.7);
    } else {
      EXPECT_LT(dc.value_at("out", 0.0), 0.1);
    }
  }
}

TEST(SolveDc, InitialConditionSelectsLatchState) {
  for (const bool start_high : {false, true}) {
    Netlist nl;
    const NodeId vdd = nl.node("vdd");
    const NodeId a = nl.node("a");
    const NodeId b = nl.node("b");
    nl.add_vsource("VDD", vdd, kGround, PwlWaveform::dc(1.8));
    nl.add_mosfet("MP1", MosType::Pmos, a, b, vdd, pmos_018(0.5));
    nl.add_mosfet("MN1", MosType::Nmos, a, b, kGround, nmos_018(2.0));
    nl.add_mosfet("MP2", MosType::Pmos, b, a, vdd, pmos_018(0.5));
    nl.add_mosfet("MN2", MosType::Nmos, b, a, kGround, nmos_018(2.0));
    Simulator sim(nl);
    sim.set_initial("a", start_high ? 1.8 : 0.0);
    sim.set_initial("b", start_high ? 0.0 : 1.8);
    const Trace dc = sim.solve_dc({"a", "b"});
    if (start_high) {
      EXPECT_GT(dc.value_at("a", 0.0), 1.6);
      EXPECT_LT(dc.value_at("b", 0.0), 0.2);
    } else {
      EXPECT_LT(dc.value_at("a", 0.0), 0.2);
      EXPECT_GT(dc.value_at("b", 0.0), 1.6);
    }
  }
}

TEST(SolveDc, TemperatureShiftsTheBalance) {
  // Pseudo-NMOS style divider: always-on PMOS load vs NMOS driven at a
  // low gate voltage. Hot lowers Vt and strengthens the near-threshold
  // NMOS relative to the strongly-inverted PMOS: the output drops.
  auto out_at = [](double temp_c) {
    Netlist nl;
    const NodeId vdd = nl.node("vdd");
    const NodeId gate = nl.node("gate");
    const NodeId out = nl.node("out");
    nl.add_vsource("VDD", vdd, kGround, PwlWaveform::dc(1.8));
    nl.add_vsource("VG", gate, kGround, PwlWaveform::dc(0.55));
    nl.add_mosfet("MP", MosType::Pmos, out, kGround, vdd, pmos_018(0.5));
    nl.add_mosfet("MN", MosType::Nmos, out, gate, kGround, nmos_018(2.0));
    Simulator sim(nl);
    return sim.solve_dc({"out"}, temp_c).value_at("out", 0.0);
  };
  EXPECT_LT(out_at(125.0), out_at(-40.0));
}

TEST(SolveDc, UnknownRecordRejected) {
  Netlist nl;
  nl.add_resistor("R", nl.node("a"), kGround, 1.0);
  Simulator sim(nl);
  EXPECT_THROW(sim.solve_dc({"nope"}), Error);
}

}  // namespace
}  // namespace memstress::analog
