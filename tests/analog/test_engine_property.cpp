// Property-style sweeps of the analog engine: physical invariants that must
// hold across component values, supply voltages, and step sizes.
#include <gtest/gtest.h>

#include <cmath>

#include "analog/engine.hpp"
#include "analog/measure.hpp"

namespace memstress::analog {
namespace {

// --- resistive dividers settle to the exact algebraic ratio ---------------

class DividerSweep
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(DividerSweep, SettlesToAlgebraicRatio) {
  const auto [r_top, r_bottom, supply] = GetParam();
  Netlist nl;
  const NodeId vin = nl.node("vin");
  const NodeId mid = nl.node("mid");
  nl.add_vsource("V", vin, kGround, PwlWaveform::dc(supply));
  nl.add_resistor("Rt", vin, mid, r_top);
  nl.add_resistor("Rb", mid, kGround, r_bottom);
  Simulator sim(nl);
  const Trace trace = sim.run({.t_stop = 4e-9, .dt = 0.5e-9}, {"mid"});
  const double expected = supply * r_bottom / (r_top + r_bottom);
  EXPECT_NEAR(trace.value_at("mid", 4e-9), expected, 1e-6 + 1e-6 * supply);
}

INSTANTIATE_TEST_SUITE_P(
    ValuesAndSupplies, DividerSweep,
    ::testing::Combine(::testing::Values(10.0, 1e3, 1e6),
                       ::testing::Values(10.0, 1e3, 1e6),
                       ::testing::Values(1.0, 1.8, 1.95)));

// --- RC settling time is invariant under the nominal step size ------------

class StepSizeSweep : public ::testing::TestWithParam<double> {};

TEST_P(StepSizeSweep, RcCrossingTimeIsStepIndependent) {
  const double dt = GetParam();
  Netlist nl;
  const NodeId vin = nl.node("vin");
  const NodeId out = nl.node("out");
  PwlWaveform step;
  step.add_point(0.0, 0.0);
  step.add_point(0.2e-9, 1.8);  // this breakpoint forces edge substepping
  nl.add_vsource("V", vin, kGround, step);
  nl.add_resistor("R", vin, out, 10e3);
  nl.add_capacitor("C", out, kGround, 100e-15);  // tau = 1 ns
  Simulator sim(nl);
  const Trace trace = sim.run({.t_stop = 10e-9, .dt = dt}, {"out"});
  const auto crossing = cross_time(trace, "out", 0.9, true, 0.0);
  ASSERT_TRUE(crossing.has_value());
  // tau * ln(1/(1-0.5)) = 0.69 ns after the edge; tolerate discretization.
  EXPECT_NEAR(*crossing, 0.2e-9 + 0.69e-9, 0.3e-9) << "dt = " << dt;
}

INSTANTIATE_TEST_SUITE_P(NominalSteps, StepSizeSweep,
                         ::testing::Values(0.05e-9, 0.25e-9, 1e-9));

// --- the bistable latch holds state across supply voltages ----------------

class LatchSupplySweep : public ::testing::TestWithParam<double> {};

TEST_P(LatchSupplySweep, HoldsStateAtEverySupply) {
  const double vdd_v = GetParam();
  Netlist nl;
  const NodeId vdd = nl.node("vdd");
  const NodeId a = nl.node("a");
  const NodeId b = nl.node("b");
  nl.add_vsource("VDD", vdd, kGround, PwlWaveform::dc(vdd_v));
  nl.add_mosfet("MP1", MosType::Pmos, a, b, vdd, pmos_018(0.5));
  nl.add_mosfet("MN1", MosType::Nmos, a, b, kGround, nmos_018(2.0));
  nl.add_mosfet("MP2", MosType::Pmos, b, a, vdd, pmos_018(0.5));
  nl.add_mosfet("MN2", MosType::Nmos, b, a, kGround, nmos_018(2.0));
  nl.add_capacitor("CA", a, kGround, 2e-15);
  nl.add_capacitor("CB", b, kGround, 2e-15);
  Simulator sim(nl);
  sim.set_initial("a", 0.0);
  sim.set_initial("b", vdd_v);
  const Trace trace = sim.run({.t_stop = 30e-9, .dt = 0.25e-9}, {"a", "b"});
  EXPECT_LT(trace.value_at("a", 30e-9), 0.1 * vdd_v);
  EXPECT_GT(trace.value_at("b", 30e-9), 0.9 * vdd_v);
}

INSTANTIATE_TEST_SUITE_P(SupplyRange, LatchSupplySweep,
                         ::testing::Values(0.8, 1.0, 1.2, 1.65, 1.8, 1.95, 2.2));

// --- inverter DC transfer is monotone at every supply ---------------------

class InverterSweep : public ::testing::TestWithParam<double> {};

TEST_P(InverterSweep, TransferIsMonotoneAndRailToRail) {
  const double vdd_v = GetParam();
  Netlist nl;
  const NodeId vdd = nl.node("vdd");
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.add_vsource("VDD", vdd, kGround, PwlWaveform::dc(vdd_v));
  PwlWaveform ramp;
  ramp.add_point(0.0, 0.0);
  ramp.add_point(100e-9, vdd_v);
  nl.add_vsource("VIN", in, kGround, ramp);
  nl.add_mosfet("MP", MosType::Pmos, out, in, vdd, pmos_018(4.0));
  nl.add_mosfet("MN", MosType::Nmos, out, in, kGround, nmos_018(2.0));
  nl.add_capacitor("CL", out, kGround, 1e-15);
  Simulator sim(nl);
  sim.set_initial("out", vdd_v);
  const Trace trace = sim.run({.t_stop = 100e-9, .dt = 0.5e-9}, {"out"});
  double prev = trace.value_at("out", 0.0);
  for (double t = 1e-9; t <= 100e-9; t += 1e-9) {
    const double now = trace.value_at("out", t);
    EXPECT_LE(now, prev + 0.02 * vdd_v) << "non-monotone at t=" << t;
    prev = now;
  }
  EXPECT_GT(trace.value_at("out", 2e-9), 0.95 * vdd_v);
  EXPECT_LT(trace.value_at("out", 99e-9), 0.05 * vdd_v);
}

INSTANTIATE_TEST_SUITE_P(SupplyRange, InverterSweep,
                         ::testing::Values(1.0, 1.4, 1.8, 2.2));

// --- charge conservation: an isolated capacitor pair shares charge --------

TEST(ChargeSharing, TwoCapacitorsThroughResistor) {
  Netlist nl;
  const NodeId a = nl.node("a");
  const NodeId b = nl.node("b");
  nl.add_capacitor("Ca", a, kGround, 10e-15);
  nl.add_capacitor("Cb", b, kGround, 30e-15);
  nl.add_resistor("R", a, b, 1e3);
  Simulator sim(nl);
  sim.set_initial("a", 2.0);
  sim.set_initial("b", 0.0);
  const Trace trace = sim.run({.t_stop = 10e-9, .dt = 0.01e-9}, {"a", "b"});
  // Final voltage = Q/C_total = 20 fC / 40 fF = 0.5 V on both nodes.
  EXPECT_NEAR(trace.value_at("a", 10e-9), 0.5, 0.01);
  EXPECT_NEAR(trace.value_at("b", 10e-9), 0.5, 0.01);
}

}  // namespace
}  // namespace memstress::analog
