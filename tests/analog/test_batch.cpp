// BatchSimulator-vs-scalar equivalence fuzz: lanes integrated in lockstep
// (shared-Jacobian and per-lane-Jacobian modes, resistance and breakdown
// sweeps) must reproduce the scalar Simulator's waveforms and the scalar
// ATE path's fail bitmaps on randomly drawn defect/stress points.
#include "analog/batch.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "defects/defect.hpp"
#include "layout/netnames.hpp"
#include "march/library.hpp"
#include "sram/block.hpp"
#include "tester/ate.hpp"
#include "util/rng.hpp"

namespace memstress::analog {
namespace {

sram::BlockSpec small_block() {
  sram::BlockSpec spec;
  spec.rows = 2;
  spec.cols = 1;
  return spec;
}

/// Scalar reference verdict for one (defect, stress, value) point.
std::string scalar_signature(const sram::BlockSpec& spec,
                             const defects::Defect& defect,
                             const sram::StressPoint& at) {
  Netlist net = sram::build_block(spec);
  defects::inject(net, defect);
  const tester::AnalogRun run =
      tester::run_march_analog(std::move(net), spec, march::test_11n(), at);
  return run.log.summary(march::test_11n());
}

TEST(BatchSimulator, MatchesScalarVerdictsAcrossRandomBridges) {
  const sram::BlockSpec spec = small_block();
  Rng rng(815);
  const std::vector<double> vdds{1.0, 1.65, 1.8, 1.95};
  const std::vector<double> periods{100e-9, 25e-9};
  const auto categories = defects::simulatable_bridge_categories(spec);

  for (int draw = 0; draw < 2; ++draw) {
    const auto category = categories[rng.below(categories.size())];
    const sram::StressPoint at{vdds[rng.below(vdds.size())],
                               periods[rng.below(periods.size())]};
    // Log-uniform resistances across the contested decade band.
    std::vector<double> lane_r;
    for (int l = 0; l < 3; ++l)
      lane_r.push_back(std::pow(10.0, rng.uniform(3.0, 5.5)));

    Netlist family = sram::build_block(spec);
    const defects::Defect lead =
        defects::representative_bridge(category, spec, lane_r.front());
    defects::inject(family, lead);
    const SweptElement swept{SweptElement::Kind::ResistorOhms,
                             family.resistors().size() - 1};
    for (const bool share : {true, false}) {
      BatchOptions opts;
      opts.share_jacobian = share;
      const auto runs = tester::run_march_analog_batch(
          family, spec, march::test_11n(), at, swept, lane_r, opts);
      ASSERT_EQ(runs.size(), lane_r.size());
      for (std::size_t l = 0; l < lane_r.size(); ++l) {
        ASSERT_TRUE(runs[l].ok) << runs[l].error;
        const defects::Defect d =
            defects::representative_bridge(category, spec, lane_r[l]);
        EXPECT_EQ(runs[l].log.summary(march::test_11n()),
                  scalar_signature(spec, d, at))
            << "share=" << share << " lane=" << l << " R=" << lane_r[l]
            << " vdd=" << at.vdd << " T=" << at.period;
      }
    }
  }
}

TEST(BatchSimulator, MatchesScalarVerdictsOnBreakdownSweep) {
  const sram::BlockSpec spec = small_block();
  const sram::StressPoint at{1.95, 25e-9};
  const double r_gox = 5e3;
  const std::vector<double> lane_vbd{1.7, 1.925};

  Netlist family = sram::build_block(spec);
  defects::Defect lead = defects::representative_bridge(
      layout::BridgeCategory::CellGateOxide, spec, r_gox);
  lead.breakdown_v = lane_vbd.front();
  defects::inject(family, lead);
  const SweptElement swept{SweptElement::Kind::BreakdownVbd,
                           family.breakdowns().size() - 1};
  const auto runs = tester::run_march_analog_batch(
      family, spec, march::test_11n(), at, swept, lane_vbd, BatchOptions{});
  ASSERT_EQ(runs.size(), lane_vbd.size());
  for (std::size_t l = 0; l < lane_vbd.size(); ++l) {
    ASSERT_TRUE(runs[l].ok) << runs[l].error;
    defects::Defect d = defects::representative_bridge(
        layout::BridgeCategory::CellGateOxide, spec, r_gox);
    d.breakdown_v = lane_vbd[l];
    EXPECT_EQ(runs[l].log.summary(march::test_11n()),
              scalar_signature(spec, d, at))
        << "lane=" << l << " vbd=" << lane_vbd[l];
  }
}

TEST(BatchSimulator, TraceMatchesScalarWaveform) {
  // Beyond verdict equality: the recorded q-output waveform of a batched
  // lane must follow the scalar trajectory sample by sample. A basin flip
  // (the lockstep iteration converging to the "other" root of a contested
  // latch) shows up here as a rail-sized divergence long before it shows
  // up in a verdict.
  const sram::BlockSpec spec = small_block();
  const sram::StressPoint at{1.8, 25e-9};
  const double r = 30e3;
  const defects::Defect lead = defects::representative_bridge(
      layout::BridgeCategory::CellTrueFalse, spec, r);

  Netlist scalar_net = sram::build_block(spec);
  defects::inject(scalar_net, lead);
  const tester::AnalogRun scalar_run = tester::run_march_analog(
      std::move(scalar_net), spec, march::test_11n(), at);

  Netlist family = sram::build_block(spec);
  defects::inject(family, lead);
  const SweptElement swept{SweptElement::Kind::ResistorOhms,
                           family.resistors().size() - 1};
  const tester::CompiledMarch compiled =
      tester::compile_march(family, spec, march::test_11n(), at);
  BatchSimulator bsim(family, swept, {r / 3.0, r}, BatchOptions{});
  for (const auto& [name, volts] :
       tester::initial_block_state(family, spec, at.vdd))
    bsim.set_initial(name, volts);
  TransientSpec tspec;
  tspec.t_stop = compiled.t_stop;
  tspec.dt = at.period / 96;
  const std::string q0 = layout::net_q(0);
  const auto lanes = bsim.run(tspec, {q0});
  ASSERT_TRUE(lanes[1].ok) << lanes[1].error;

  const Trace& st = scalar_run.trace;
  const Trace& bt = lanes[1].trace;
  ASSERT_EQ(st.sample_count(), bt.sample_count());
  const std::size_t si = st.signal_index(q0);
  const std::size_t bi = bt.signal_index(q0);
  double max_diff = 0.0;
  for (std::size_t k = 0; k < st.sample_count(); ++k)
    max_diff = std::max(max_diff,
                        std::fabs(st.samples(si)[k] - bt.samples(bi)[k]));
  // Newton tolerance is 1e-6 V; allow a couple of orders of slack for
  // tolerance-level differences compounding over the transient.
  EXPECT_LT(max_diff, 1e-4);
}

}  // namespace
}  // namespace memstress::analog
