// Temperature physics of the MOSFET model and its propagation through the
// transient engine.
#include <gtest/gtest.h>

#include "analog/engine.hpp"
#include "analog/measure.hpp"
#include "analog/mos_model.hpp"
#include "sram/behavioral.hpp"

namespace memstress::analog {
namespace {

TEST(Temperature, RoomTemperatureIsIdentity) {
  const MosParams p = nmos_018(2.0);
  const MosParams adjusted = at_temperature(p, 25.0);
  EXPECT_DOUBLE_EQ(adjusted.vt, p.vt);
  EXPECT_DOUBLE_EQ(adjusted.kp, p.kp);
  EXPECT_DOUBLE_EQ(mos_current(MosType::Nmos, p, 1.8, 1.8, 0.0),
                   mos_current(MosType::Nmos, p, 1.8, 1.8, 0.0, 25.0));
}

TEST(Temperature, ThresholdDropsWhenHot) {
  const MosParams p = nmos_018(2.0);
  EXPECT_LT(at_temperature(p, 125.0).vt, p.vt);
  EXPECT_GT(at_temperature(p, -40.0).vt, p.vt);
  // ~1.5 mV/K.
  EXPECT_NEAR(at_temperature(p, 125.0).vt, p.vt - 0.15, 1e-9);
}

TEST(Temperature, MobilityDropsWhenHot) {
  const MosParams p = nmos_018(2.0);
  EXPECT_LT(at_temperature(p, 125.0).kp, p.kp);
  EXPECT_GT(at_temperature(p, -40.0).kp, p.kp);
}

TEST(Temperature, InversionPoint) {
  // The classic effect: at high overdrive, mobility loss wins (hot is
  // slower); near threshold, the Vt drop wins (hot is faster).
  const MosParams p = nmos_018(2.0);
  const double strong_cold = mos_current(MosType::Nmos, p, 1.8, 1.8, 0.0, -40.0);
  const double strong_hot = mos_current(MosType::Nmos, p, 1.8, 1.8, 0.0, 125.0);
  EXPECT_GT(strong_cold, strong_hot);

  const double weak_cold = mos_current(MosType::Nmos, p, 1.8, 0.55, 0.0, -40.0);
  const double weak_hot = mos_current(MosType::Nmos, p, 1.8, 0.55, 0.0, 125.0);
  EXPECT_LT(weak_cold, weak_hot);
}

TEST(Temperature, PmosMirrorsTheAdjustment) {
  const MosParams p = pmos_018(2.0);
  const double room = mos_current(MosType::Pmos, p, 0.0, 0.0, 1.8, 25.0);
  const double hot = mos_current(MosType::Pmos, p, 0.0, 0.0, 1.8, 125.0);
  // Strong inversion: hot PMOS drives less (|current| smaller).
  EXPECT_LT(std::abs(hot), std::abs(room));
}

TEST(Temperature, EnginePropagatesToInverterDelay) {
  // An inverter discharging a load at full overdrive is slower when hot.
  auto fall_delay = [](double temp_c) {
    Netlist nl;
    const NodeId vdd = nl.node("vdd");
    const NodeId in = nl.node("in");
    const NodeId out = nl.node("out");
    nl.add_vsource("VDD", vdd, kGround, PwlWaveform::dc(1.8));
    PwlWaveform step;
    step.add_point(0.0, 0.0);
    step.add_point(1e-9, 0.0);
    step.add_point(1.1e-9, 1.8);
    nl.add_vsource("VIN", in, kGround, step);
    nl.add_mosfet("MP", MosType::Pmos, out, in, vdd, pmos_018(4.0));
    nl.add_mosfet("MN", MosType::Nmos, out, in, kGround, nmos_018(2.0));
    nl.add_capacitor("CL", out, kGround, 50e-15);
    Simulator sim(nl);
    sim.set_initial("out", 1.8);
    TransientSpec spec;
    spec.t_stop = 10e-9;
    spec.dt = 0.02e-9;
    spec.temp_c = temp_c;
    const Trace trace = sim.run(spec, {"out"});
    const auto t = cross_time(trace, "out", 0.9, false, 1e-9);
    EXPECT_TRUE(t.has_value());
    return t.value_or(0.0);
  };
  const double cold = fall_delay(-40.0);
  const double room = fall_delay(25.0);
  const double hot = fall_delay(125.0);
  EXPECT_LT(cold, room);
  EXPECT_LT(room, hot);
}

TEST(Temperature, StressPointDefaultsToRoom) {
  const sram::StressPoint at{1.8, 25e-9};
  EXPECT_DOUBLE_EQ(at.temp_c, 25.0);
}

}  // namespace
}  // namespace memstress::analog
