#include "repair/repair.hpp"

#include <gtest/gtest.h>

#include "march/library.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace memstress::repair {
namespace {

using Cell = std::pair<int, int>;

TEST(Repair, CleanBitmapNeedsNothing) {
  const RepairPlan plan = allocate_repair(std::set<Cell>{}, {2, 2});
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.spares_used(), 0);
}

TEST(Repair, SingleCellUsesOneSpare) {
  const std::set<Cell> fails{{3, 5}};
  const RepairPlan plan = allocate_repair(fails, {2, 2});
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.spares_used(), 1);
  EXPECT_TRUE(plan_covers(plan, fails));
}

TEST(Repair, RowFailureForcesARowSpare) {
  // Five fails in one row exceed any 2-column budget: must-repair the row.
  std::set<Cell> fails;
  for (int c = 0; c < 5; ++c) fails.insert({7, c});
  const RepairPlan plan = allocate_repair(fails, {1, 2});
  ASSERT_TRUE(plan.feasible);
  ASSERT_EQ(plan.rows_replaced.size(), 1u);
  EXPECT_EQ(plan.rows_replaced[0], 7);
  EXPECT_TRUE(plan.cols_replaced.empty());
}

TEST(Repair, ColumnFailureForcesAColumnSpare) {
  std::set<Cell> fails;
  for (int r = 0; r < 5; ++r) fails.insert({r, 2});
  const RepairPlan plan = allocate_repair(fails, {2, 1});
  ASSERT_TRUE(plan.feasible);
  ASSERT_EQ(plan.cols_replaced.size(), 1u);
  EXPECT_EQ(plan.cols_replaced[0], 2);
}

TEST(Repair, CrossPatternNeedsBothKinds) {
  // A full row plus a full column: one row spare + one column spare.
  std::set<Cell> fails;
  for (int c = 0; c < 6; ++c) fails.insert({3, c});
  for (int r = 0; r < 6; ++r) fails.insert({r, 4});
  const RepairPlan plan = allocate_repair(fails, {1, 1});
  ASSERT_TRUE(plan.feasible) << plan.describe();
  EXPECT_EQ(plan.rows_replaced, std::vector<int>{3});
  EXPECT_EQ(plan.cols_replaced, std::vector<int>{4});
  EXPECT_TRUE(plan_covers(plan, fails));
}

TEST(Repair, InfeasibleWhenSparesExhausted) {
  // A 3x3 block of fails needs 3 spares in one direction; give only 2+2...
  std::set<Cell> fails;
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 3; ++c) fails.insert({r, c});
  EXPECT_FALSE(allocate_repair(fails, {2, 2}).feasible);
  // ...but 3 row spares fix it.
  EXPECT_TRUE(allocate_repair(fails, {3, 0}).feasible);
}

TEST(Repair, DiagonalUsesMinimalSpares) {
  // Three isolated fails on a diagonal: three single spares of any kind.
  const std::set<Cell> fails{{0, 0}, {1, 1}, {2, 2}};
  const RepairPlan plan = allocate_repair(fails, {2, 2});
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.spares_used(), 3);
  EXPECT_TRUE(plan_covers(plan, fails));
  // With a 1+1 budget it is unrepairable.
  EXPECT_FALSE(allocate_repair(fails, {1, 1}).feasible);
}

TEST(Repair, ZeroSparesOnlyRepairsCleanDies) {
  EXPECT_TRUE(allocate_repair(std::set<Cell>{}, {0, 0}).feasible);
  EXPECT_FALSE(allocate_repair(std::set<Cell>{{1, 1}}, {0, 0}).feasible);
}

TEST(Repair, FromFailLogEndToEnd) {
  // Real flow: march a defective behavioral memory, repair from the log.
  sram::BehavioralSram memory(16, 16);
  sram::InjectedFault f;
  f.type = sram::FaultType::StuckAt1;
  f.row = 4;
  f.col = 9;
  f.envelope = sram::FailureEnvelope::always();
  memory.add_fault(f);
  const march::FailLog log = march::run_march(memory, march::test_11n());
  ASSERT_FALSE(log.passed());
  const RepairPlan plan = allocate_repair(log, {1, 1});
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.spares_used(), 1);
  EXPECT_TRUE(plan_covers(plan, log.failing_cells()));
}

TEST(Repair, DescribeIsReadable) {
  const RepairPlan bad;
  EXPECT_EQ(bad.describe(), "UNREPAIRABLE");
  const std::set<Cell> fails{{3, 5}};
  const std::string text = allocate_repair(fails, {2, 2}).describe();
  EXPECT_NE(text.find("repairable"), std::string::npos);
}

TEST(Repair, RandomBitmapsPlanIsAlwaysValid) {
  // Property: whenever the allocator claims feasibility, the plan really
  // covers the bitmap and respects the spare budget.
  Rng rng(404);
  for (int trial = 0; trial < 200; ++trial) {
    std::set<Cell> fails;
    const int count = 1 + static_cast<int>(rng.below(8));
    for (int i = 0; i < count; ++i)
      fails.insert({static_cast<int>(rng.below(10)),
                    static_cast<int>(rng.below(10))});
    SpareConfig spares;
    spares.spare_rows = static_cast<int>(rng.below(3));
    spares.spare_cols = static_cast<int>(rng.below(3));
    const RepairPlan plan = allocate_repair(fails, spares);
    if (plan.feasible) {
      EXPECT_TRUE(plan_covers(plan, fails));
      EXPECT_LE(static_cast<int>(plan.rows_replaced.size()), spares.spare_rows);
      EXPECT_LE(static_cast<int>(plan.cols_replaced.size()), spares.spare_cols);
    }
  }
}

TEST(Repair, RandomFeasibilityMatchesBruteForce) {
  // Property: the allocator's feasibility verdict matches brute-force
  // enumeration of all spare assignments on small bitmaps.
  Rng rng(808);
  for (int trial = 0; trial < 60; ++trial) {
    std::set<Cell> fails;
    const int count = 1 + static_cast<int>(rng.below(6));
    for (int i = 0; i < count; ++i)
      fails.insert({static_cast<int>(rng.below(5)),
                    static_cast<int>(rng.below(5))});
    const SpareConfig spares{1, 1};
    const RepairPlan plan = allocate_repair(fails, spares);
    // Brute force: try every (row, col) pair (incl. "none" = -1).
    bool any = false;
    for (int r = -1; r < 5 && !any; ++r) {
      for (int c = -1; c < 5 && !any; ++c) {
        bool all_covered = true;
        for (const auto& [fr, fc] : fails)
          all_covered = all_covered && (fr == r || fc == c);
        any = all_covered;
      }
    }
    EXPECT_EQ(plan.feasible, any) << "trial " << trial;
  }
}

TEST(Repair, ValidatesInput) {
  EXPECT_THROW(allocate_repair(std::set<Cell>{{0, 0}}, {-1, 2}), Error);
}

}  // namespace
}  // namespace memstress::repair
