// Golden pins for the closed-form technology backends: the Table-1 coverage
// and DPM columns of the full default STT-MRAM and undervolt campaigns,
// pinned to 17 significant digits. Both backends are pure deterministic
// arithmetic, so these must reproduce bit-for-bit on every platform; any
// drift means the physics changed and the constants need a reviewed update.
//
// Regenerate after an intentional model change with
//   MEMSTRESS_REGEN_GOLDEN=1 ./test_tech --gtest_filter='TechGolden.*'
// and paste the printed rows.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "estimator/coverage.hpp"
#include "estimator/detectability.hpp"
#include "tech/model.hpp"

namespace memstress::estimator {
namespace {

struct GoldenRow {
  double vdd;
  double defect_coverage;
  double dpm_value;
};

MemoryGeometry golden_geometry() { return MemoryGeometry{128, 32, 4, 1}; }

EstimatorReport report_for(tech::Technology technology) {
  CharacterizeSpec spec = tech::default_characterize_spec(technology);
  spec.block.rows = 2;
  spec.block.cols = 1;
  spec.threads = 1;
  const DetectabilityDb db = characterize(spec);
  const FaultCoverageEstimator estimator(db, PopulationModel::calibrate(),
                                         defects::FabModel{},
                                         defects::MtjFabModel{});
  return estimator.table1(golden_geometry());
}

void check_rows(const EstimatorReport& report, const GoldenRow* golden,
                std::size_t count) {
  if (std::getenv("MEMSTRESS_REGEN_GOLDEN") != nullptr) {
    for (const CoverageRow& row : report.rows)
      std::printf("    {%.17g, %.17g, %.17g},\n", row.vdd, row.defect_coverage,
                  row.dpm_value);
    return;
  }
  ASSERT_EQ(report.rows.size(), count);
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_DOUBLE_EQ(report.rows[i].vdd, golden[i].vdd) << "row " << i;
    EXPECT_DOUBLE_EQ(report.rows[i].defect_coverage,
                     golden[i].defect_coverage)
        << "row " << i;
    EXPECT_DOUBLE_EQ(report.rows[i].dpm_value, golden[i].dpm_value)
        << "row " << i;
  }
}

TEST(TechGolden, SttMramTable1) {
  // Hammer15N over the default MTJ grid. Note the inverted stress profile
  // vs SRAM: the retention + read-disturb classes are caught best at the
  // *elevated* corners (bias tilts the barrier), so VLV trails here.
  const GoldenRow golden[] = {
      {1, 0.28650000000000003, 1541.8879554472965},
      {1.6499999999999999, 0.33850000000000002, 1429.5952657343846},
      {1.8, 0.33850000000000002, 1429.5952657343846},
      {1.95, 0.33850000000000002, 1429.5952657343846},
  };
  check_rows(report_for(tech::Technology::SttMram), golden,
             sizeof(golden) / sizeof(golden[0]));
}

TEST(TechGolden, UndervoltTable1) {
  // BER-cliff injection over the SRAM defect grid: the VLV corner sits on
  // the collapsing-margin slope and doubles the nominal-corner coverage —
  // the paper's Table-1 shape, reproduced by software fault injection.
  const GoldenRow golden[] = {
      {1, 0.71115022103594971, 416.3745925419571},
      {1.6499999999999999, 0.34168654600050063, 948.7007700699213},
      {1.8, 0.34168654600050063, 948.7007700699213},
      {1.95, 0.34128617899741442, 949.27746821193978},
  };
  check_rows(report_for(tech::Technology::Undervolt), golden,
             sizeof(golden) / sizeof(golden[0]));
}

}  // namespace
}  // namespace memstress::estimator
