// Unit tests for the TechnologyModel layer: name round-trips, the MTJ and
// undervolt closed-form physics (threshold positions and monotonic trends,
// not regression constants — those live in test_tech_golden.cpp), the MTJ
// fab model and sampler mode, and the per-technology default specs.
#include <gtest/gtest.h>

#include "defects/defect.hpp"
#include "defects/distributions.hpp"
#include "defects/sampler.hpp"
#include "march/library.hpp"
#include "tech/model.hpp"
#include "tech/stt_mram.hpp"
#include "tech/technology.hpp"
#include "tech/undervolt.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace memstress::tech {
namespace {

TEST(Technology, NamesRoundTripAndUnknownsThrow) {
  for (const auto technology :
       {Technology::Sram6T, Technology::SttMram, Technology::Undervolt})
    EXPECT_EQ(parse_technology(technology_name(technology)), technology);
  EXPECT_EQ(technology_name(Technology::SttMram), std::string("stt_mram"));
  EXPECT_THROW(parse_technology("sram"), Error);
  EXPECT_THROW(parse_technology(""), Error);
  EXPECT_THROW(parse_technology("STT_MRAM"), Error);
}

TEST(Technology, ModelForReturnsTheMatchingSingleton) {
  for (const auto technology :
       {Technology::Sram6T, Technology::SttMram, Technology::Undervolt}) {
    const TechnologyModel& model = model_for(technology);
    EXPECT_EQ(model.technology(), technology);
    // Stateless singletons: the same reference every time.
    EXPECT_EQ(&model, &model_for(technology));
  }
  // Only the analog backend has a lockstep batch kernel.
  EXPECT_TRUE(model_for(Technology::Sram6T).batched());
  EXPECT_FALSE(model_for(Technology::SttMram).batched());
  EXPECT_FALSE(model_for(Technology::Undervolt).batched());
}

TEST(Technology, DefaultSpecsCarryTheTechnologyConventions) {
  const estimator::CharacterizeSpec sram =
      default_characterize_spec(Technology::Sram6T);
  EXPECT_EQ(sram.technology, Technology::Sram6T);
  EXPECT_EQ(sram.test.name, "11N");

  const estimator::CharacterizeSpec stt =
      default_characterize_spec(Technology::SttMram);
  EXPECT_EQ(stt.technology, Technology::SttMram);
  EXPECT_EQ(stt.test.name, "Hammer15N");

  const estimator::CharacterizeSpec uv =
      default_characterize_spec(Technology::Undervolt);
  EXPECT_EQ(uv.technology, Technology::Undervolt);
  // The BER cliff is below VLV; the default axis must actually sweep it.
  ASSERT_FALSE(uv.vdds.empty());
  EXPECT_LT(uv.vdds.front(), 1.0);
  EXPECT_GT(uv.vdds.back(), 1.8);
}

// ---------------------------------------------------------------------------
// MTJ physics.

TEST(SttMramPhysics, DeltaTracksBarrierVolume) {
  const SttMramSpec spec;
  // Healthy junction: Delta is exactly nominal.
  EXPECT_DOUBLE_EQ(mtj_delta_eff(spec, spec.r_parallel), spec.delta_nominal);
  // Monotonically increasing in R_P (thicker barrier, more stable).
  double last = 0.0;
  for (const double r : spec.resistances) {
    const double delta = mtj_delta_eff(spec, r);
    EXPECT_GT(delta, last);
    last = delta;
  }
}

TEST(SttMramPhysics, RetentionFailsOnlyThinBarriers) {
  const SttMramSpec spec;
  // Pinholed barrier: unstable, flips during the pause at any supply.
  EXPECT_TRUE(mtj_retention_detected(spec, 1.0e3, 1.0));
  // Healthy junction: stable at every corner.
  EXPECT_FALSE(mtj_retention_detected(spec, spec.r_parallel, 1.0));
  EXPECT_FALSE(mtj_retention_detected(spec, spec.r_parallel, 1.95));
  // Higher standby bias tilts the barrier: detection at high vdd implies
  // detection at (equal or) lower stability, never the reverse.
  for (const double r : spec.resistances) {
    if (mtj_retention_detected(spec, r, 1.0)) {
      EXPECT_TRUE(mtj_retention_detected(spec, r, 1.95));
    }
  }
}

TEST(SttMramPhysics, TransitionFailsThickBarriersAtLowSupply) {
  const SttMramSpec spec;
  // Void contact / thick barrier: the VLV-level supply cannot push the
  // critical current.
  EXPECT_TRUE(mtj_transition_detected(spec, 1.2e4, 1.0, 100e-9));
  // Healthy junction writes fine everywhere.
  EXPECT_FALSE(mtj_transition_detected(spec, spec.r_parallel, 1.0, 100e-9));
  EXPECT_FALSE(mtj_transition_detected(spec, spec.r_parallel, 1.95, 100e-9));
  // Raising the supply rescues marginal writes: detected at 1.95 V implies
  // detected at 1.0 V.
  for (const double r : spec.resistances) {
    if (mtj_transition_detected(spec, r, 1.95, 100e-9)) {
      EXPECT_TRUE(mtj_transition_detected(spec, r, 1.0, 100e-9));
    }
  }
  // Shorter period = narrower write pulse = higher corrected critical
  // current: a faster test can only catch more write failures.
  for (const double r : spec.resistances) {
    if (mtj_transition_detected(spec, r, 1.0, 100e-9)) {
      EXPECT_TRUE(mtj_transition_detected(spec, r, 1.0, 15e-9));
    }
  }
}

TEST(SttMramPhysics, ReadDisturbNeedsTheHammer) {
  const SttMramSpec spec;
  // A thin-barrier junction disturbed by the 8-deep hammer...
  EXPECT_TRUE(mtj_read_disturb_detected(spec, 1.0e3, 1.8, 8));
  // ...is missed by a single read at the same corner only if its per-read
  // flip probability is below 1/2 — more reads never detect less.
  for (const double r : spec.resistances) {
    if (mtj_read_disturb_detected(spec, r, 1.8, 1)) {
      EXPECT_TRUE(mtj_read_disturb_detected(spec, r, 1.8, 8));
    }
  }
  // The healthy junction survives the hammer.
  EXPECT_FALSE(mtj_read_disturb_detected(spec, spec.r_parallel, 1.8, 8));
}

TEST(SttMramPhysics, HammerReadCountIsTheLongestReadRun) {
  EXPECT_EQ(hammer_read_count(march::march_hammer()), 8);
  // Hammer-free stimuli still make one disturb attempt per read.
  EXPECT_EQ(hammer_read_count(march::test_11n()), 1);
  EXPECT_EQ(hammer_read_count(march::mats_plus()), 1);
}

// ---------------------------------------------------------------------------
// Undervolt physics.

TEST(UndervoltPhysics, MarginCollapsesAtTheCliff) {
  const UndervoltSpec spec;
  EXPECT_DOUBLE_EQ(undervolt_healthy_margin(spec, spec.v_safe),
                   spec.margin_nominal);
  EXPECT_DOUBLE_EQ(undervolt_healthy_margin(spec, spec.v_cliff), 0.0);
  EXPECT_DOUBLE_EQ(undervolt_healthy_margin(spec, 0.3), 0.0);
  // Monotone in vdd across the cliff and above v_safe.
  double last = -1.0;
  for (const double vdd : {0.4, 0.55, 0.7, 0.9, 1.0, 1.4, 1.8}) {
    const double margin = undervolt_healthy_margin(spec, vdd);
    EXPECT_GE(margin, last);
    last = margin;
  }
}

TEST(UndervoltPhysics, BerIsAMonotoneErfcOfTheMargin) {
  const UndervoltSpec spec;
  EXPECT_DOUBLE_EQ(undervolt_ber(spec, 0.0), 0.5);
  EXPECT_LT(undervolt_ber(spec, spec.margin_nominal), 1e-6);
  EXPECT_GT(undervolt_ber(spec, 0.01), undervolt_ber(spec, 0.02));
}

TEST(UndervoltPhysics, HardBridgesDegradeMoreThanWeakOnes) {
  const UndervoltSpec spec;
  estimator::DbEntry entry;
  entry.kind = defects::DefectKind::Bridge;
  entry.category = 0;  // CellTrueFalse, severity 1.0
  entry.vdd = 1.0;
  entry.period = 100e-9;
  entry.resistance = 100.0;
  const double hard = undervolt_degradation(spec, entry);
  entry.resistance = 100e3;
  const double weak = undervolt_degradation(spec, entry);
  EXPECT_GT(hard, weak);
  EXPECT_GT(hard, 0.9);  // a dead short eats essentially the whole margin
  EXPECT_LT(weak, 0.1);
}

TEST(UndervoltPhysics, DetectionNeedsEnoughOperations) {
  const UndervoltSpec spec;
  estimator::DbEntry entry;
  entry.kind = defects::DefectKind::Bridge;
  entry.category = 0;
  entry.vdd = 0.9;  // below v_safe: margin already reduced
  entry.period = 100e-9;
  entry.resistance = 8e3;
  // The same physical BER crosses the expected-error threshold only when
  // the march applies enough operations.
  EXPECT_FALSE(undervolt_detected(spec, entry, 1.0));
  EXPECT_TRUE(undervolt_detected(spec, entry, 1e12));
}

// ---------------------------------------------------------------------------
// MTJ defect population.

TEST(MtjFabModel, BinWeightsAreADistributionOnTheSweepAxis) {
  const defects::MtjFabModel fab;
  const SttMramSpec mtj;
  double total = 0.0;
  for (const auto& bin : fab.resistance_bins) {
    total += bin.probability;
    // Every bin sits exactly on the backend's sweep axis so estimator
    // lookups hit characterized entries, never nearest-neighbour guesses.
    bool on_axis = false;
    for (const double r : mtj.resistances) on_axis = on_axis || r == bin.ohms;
    EXPECT_TRUE(on_axis) << "bin " << bin.ohms << " not on the R_P sweep axis";
    // The healthy anchor point is not a defect bin.
    EXPECT_NE(bin.ohms, mtj.r_parallel);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_GT(fab.retention_fraction, 0.0);
  EXPECT_GT(fab.transition_fraction, 0.0);
  EXPECT_LT(fab.retention_fraction + fab.transition_fraction, 1.0);
}

TEST(MtjFabModel, SamplesFollowTheCategoryMix) {
  const defects::MtjFabModel fab;
  Rng rng(2025);
  int counts[3] = {0, 0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto category = fab.sample_category(rng);
    counts[static_cast<int>(category)]++;
    EXPECT_GT(fab.sample_resistance(rng), 0.0);
  }
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, fab.retention_fraction, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, fab.transition_fraction,
              0.02);
}

TEST(MtjFabModel, SamplerEmitsMtjDefects) {
  sram::BlockSpec block;
  block.rows = 2;
  block.cols = 1;
  defects::DefectSampler sampler(defects::MtjFabModel{}, block);
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const defects::Defect defect = sampler.sample(rng);
    EXPECT_EQ(defect.kind, defects::DefectKind::Mtj);
    EXPECT_GT(defect.resistance, 0.0);
    EXPECT_EQ(defect.tag().rfind("mtj[", 0), 0u) << defect.tag();
  }
}

TEST(MtjDefects, AnalogInjectionRefusesMtjDefects) {
  sram::BlockSpec block;
  block.rows = 2;
  block.cols = 1;
  const defects::Defect defect = defects::representative_mtj(
      defects::MtjFaultCategory::Retention, block, 1.3e3);
  analog::Netlist netlist = sram::build_block(block);
  EXPECT_THROW(defects::inject(netlist, defect), Error);
}

}  // namespace
}  // namespace memstress::tech
