// Cross-technology determinism matrix: for every TechnologyModel backend,
// the characterization CSV must be byte-identical at any thread count and in
// any solver mode, the spec fingerprint must key on the technology (so a
// cache from one backend can never satisfy another's spec), and the
// undervolt grid must mirror the SRAM-6T one row for row.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analog/batch.hpp"
#include "estimator/detectability.hpp"
#include "tech/model.hpp"
#include "util/error.hpp"

namespace memstress::estimator {
namespace {

/// Tiny but non-trivial base grid: two supplies so detectability actually
/// varies, one period, one resistance per defect family. Small enough that
/// the analog backend stays sub-second.
CharacterizeSpec tiny_spec(tech::Technology technology) {
  CharacterizeSpec spec = tech::default_characterize_spec(technology);
  spec.block.rows = 2;
  spec.block.cols = 1;
  spec.vdds = {1.0, 1.8};
  spec.periods = {100e-9};
  spec.bridge_resistances = {1e3};
  spec.open_resistances = {1e6};
  spec.gox_vbds = {1.7};
  if (technology == tech::Technology::SttMram)
    spec.mtj.resistances = {1.0e3, 3.2e3, 1.2e4};
  spec.threads = 1;
  return spec;
}

TEST(TechMatrix, CsvIsByteIdenticalAtAnyThreadCount) {
  for (const auto technology :
       {tech::Technology::Sram6T, tech::Technology::SttMram,
        tech::Technology::Undervolt}) {
    CharacterizeSpec spec = tiny_spec(technology);
    const std::string baseline = characterize(spec).to_csv();
    for (const int threads : {2, 8}) {
      spec.threads = threads;
      EXPECT_EQ(characterize(spec).to_csv(), baseline)
          << tech::technology_name(technology) << " at threads=" << threads;
    }
  }
}

TEST(TechMatrix, CsvIsIdenticalInEverySolverMode) {
  // The solver mode is an analog-backend execution knob; the closed-form
  // backends must ignore it entirely and the analog one must produce the
  // same verdicts in every mode.
  for (const auto technology :
       {tech::Technology::Sram6T, tech::Technology::SttMram,
        tech::Technology::Undervolt}) {
    CharacterizeSpec spec = tiny_spec(technology);
    spec.solver = analog::SolverMode::Exact;
    const std::string baseline = characterize(spec).to_csv();
    for (const auto mode :
         {analog::SolverMode::Incremental, analog::SolverMode::Batched}) {
      spec.solver = mode;
      EXPECT_EQ(characterize(spec).to_csv(), baseline)
          << tech::technology_name(technology);
    }
  }
}

TEST(TechMatrix, FingerprintKeysOnTheTechnology) {
  // Same axes, same test, same block — only the backend differs. Every
  // pairing must fingerprint differently or a cross-technology cache hit
  // becomes possible.
  const std::string sram = spec_fingerprint(tiny_spec(tech::Technology::Sram6T));
  CharacterizeSpec stt_as_sram = tiny_spec(tech::Technology::Sram6T);
  stt_as_sram.technology = tech::Technology::SttMram;
  CharacterizeSpec uv_as_sram = tiny_spec(tech::Technology::Sram6T);
  uv_as_sram.technology = tech::Technology::Undervolt;
  const std::string stt = spec_fingerprint(stt_as_sram);
  const std::string uv = spec_fingerprint(uv_as_sram);
  EXPECT_NE(sram, stt);
  EXPECT_NE(sram, uv);
  EXPECT_NE(stt, uv);
}

TEST(TechMatrix, FingerprintKeysOnTheBackendParameterPacks) {
  const CharacterizeSpec base = tiny_spec(tech::Technology::SttMram);
  CharacterizeSpec tweaked = base;
  tweaked.mtj.delta_nominal = 55.0;
  EXPECT_NE(spec_fingerprint(base), spec_fingerprint(tweaked));

  const CharacterizeSpec uv_base = tiny_spec(tech::Technology::Undervolt);
  CharacterizeSpec uv_tweaked = uv_base;
  uv_tweaked.undervolt.v_cliff = 0.6;
  EXPECT_NE(spec_fingerprint(uv_base), spec_fingerprint(uv_tweaked));

  // The packs only participate for their own technology: a sram6t spec
  // fingerprints the same whatever the dormant MTJ pack holds.
  const CharacterizeSpec sram_base = tiny_spec(tech::Technology::Sram6T);
  CharacterizeSpec sram_tweaked = sram_base;
  sram_tweaked.mtj.delta_nominal = 55.0;
  sram_tweaked.undervolt.v_cliff = 0.6;
  EXPECT_EQ(spec_fingerprint(sram_base), spec_fingerprint(sram_tweaked));
}

TEST(TechMatrix, CsvRoundTripPreservesTechnologyAndFingerprint) {
  for (const auto technology :
       {tech::Technology::Sram6T, tech::Technology::SttMram,
        tech::Technology::Undervolt}) {
    const CharacterizeSpec spec = tiny_spec(technology);
    const DetectabilityDb db = characterize(spec);
    EXPECT_EQ(db.technology(), technology);
    EXPECT_EQ(db.fingerprint(), spec_fingerprint(spec));
    const DetectabilityDb reloaded =
        DetectabilityDb::from_csv(db.to_csv(), spec_fingerprint(spec));
    EXPECT_EQ(reloaded.technology(), technology);
    EXPECT_EQ(reloaded.fingerprint(), db.fingerprint());
    EXPECT_EQ(reloaded.to_csv(), db.to_csv());
  }
}

TEST(TechMatrix, CrossTechnologyCacheIsRejected) {
  // The stale-cache guard in one step: a CSV cached by the stt_mram backend
  // must never satisfy a pipeline expecting the sram6t or undervolt
  // fingerprint of the *same* axes.
  const DetectabilityDb stt_db =
      characterize(tiny_spec(tech::Technology::SttMram));
  const std::string csv = stt_db.to_csv();
  for (const auto other :
       {tech::Technology::Sram6T, tech::Technology::Undervolt}) {
    CharacterizeSpec foreign = tiny_spec(tech::Technology::SttMram);
    foreign.technology = other;
    EXPECT_THROW(DetectabilityDb::from_csv(csv, spec_fingerprint(foreign)),
                 Error)
        << tech::technology_name(other);
  }
}

TEST(TechMatrix, UndervoltGridMirrorsTheSramGrid) {
  // The undervolt campaign injects faults over the exact SRAM-6T defect
  // population so its escapes are row-for-row comparable to the analog run.
  CharacterizeSpec sram = tiny_spec(tech::Technology::Sram6T);
  CharacterizeSpec uv = sram;
  uv.technology = tech::Technology::Undervolt;
  const std::vector<GridPoint> a = characterize_grid(sram);
  const std::vector<GridPoint> b = characterize_grid(uv);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].defect_tag, b[i].defect_tag);
    EXPECT_EQ(a[i].entry.kind, b[i].entry.kind);
    EXPECT_EQ(a[i].entry.category, b[i].entry.category);
    EXPECT_EQ(a[i].entry.resistance, b[i].entry.resistance);
    EXPECT_EQ(a[i].entry.vdd, b[i].entry.vdd);
    EXPECT_EQ(a[i].entry.period, b[i].entry.period);
  }
}

TEST(TechMatrix, SttGridCoversEveryCategoryResistanceAndCorner) {
  const CharacterizeSpec spec = tiny_spec(tech::Technology::SttMram);
  const std::vector<GridPoint> grid = characterize_grid(spec);
  // 3 fault categories x 3 resistances x 2 vdds x 1 period.
  EXPECT_EQ(grid.size(), 3u * 3u * 2u * 1u);
  for (const GridPoint& point : grid)
    EXPECT_EQ(point.entry.kind, defects::DefectKind::Mtj);
}

}  // namespace
}  // namespace memstress::estimator
