// Solver-mode equivalence contract for estimator::characterize(): the
// exact, incremental and batched backends — at any thread count — must
// produce byte-identical CSVs. The solver knob changes how the grid is
// integrated, never what it reports; a detected/escape flip between modes
// is a correctness bug, not an accuracy tradeoff.
#include <gtest/gtest.h>

#include <string>

#include "analog/batch.hpp"
#include "estimator/detectability.hpp"
#include "march/library.hpp"
#include "util/error.hpp"

namespace memstress::estimator {
namespace {

CharacterizeSpec tiny_grid() {
  CharacterizeSpec spec;
  spec.block.rows = 2;
  spec.block.cols = 1;
  spec.test = march::test_11n();
  // One stress corner per axis band keeps this in tier-1 time while still
  // exercising bridges, opens and the breakdown sweep in one run.
  spec.vdds = {1.8};
  spec.periods = {100e-9};
  spec.bridge_resistances = {1e3, 30e3};
  spec.open_resistances = {3e4};
  spec.gox_vbds = {1.925};
  return spec;
}

TEST(CharacterizeModesDeterminism, CsvIdenticalAcrossSolversAndThreads) {
  CharacterizeSpec spec = tiny_grid();
  spec.solver = analog::SolverMode::Exact;
  spec.threads = 1;
  const std::string reference = characterize(spec).to_csv();
  ASSERT_FALSE(reference.empty());

  for (const auto mode : {analog::SolverMode::Exact,
                          analog::SolverMode::Incremental,
                          analog::SolverMode::Batched}) {
    for (const int threads : {1, 8}) {
      if (mode == analog::SolverMode::Exact && threads == 1) continue;
      CharacterizeSpec run = tiny_grid();
      run.solver = mode;
      run.threads = threads;
      EXPECT_EQ(characterize(run).to_csv(), reference)
          << "mode=" << analog::solver_mode_name(mode)
          << " threads=" << threads;
    }
  }
}

TEST(CharacterizeModesDeterminism, SolverModeParsingRoundTrips) {
  EXPECT_EQ(analog::parse_solver_mode("exact"), analog::SolverMode::Exact);
  EXPECT_EQ(analog::parse_solver_mode("incremental"),
            analog::SolverMode::Incremental);
  EXPECT_EQ(analog::parse_solver_mode("batched"), analog::SolverMode::Batched);
  EXPECT_THROW(analog::parse_solver_mode("fast"), Error);
  EXPECT_STREQ(analog::solver_mode_name(analog::SolverMode::Batched),
               "batched");
}

TEST(CharacterizeModesDeterminism, FingerprintIgnoresSolverMode) {
  // The solver is an execution knob: caches written under one mode must
  // stay valid under another, so the fingerprint may not include it.
  CharacterizeSpec a = tiny_grid();
  a.solver = analog::SolverMode::Exact;
  CharacterizeSpec b = tiny_grid();
  b.solver = analog::SolverMode::Batched;
  EXPECT_EQ(spec_fingerprint(a), spec_fingerprint(b));
}

}  // namespace
}  // namespace memstress::estimator
