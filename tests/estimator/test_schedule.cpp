#include "estimator/schedule.hpp"

#include <gtest/gtest.h>

#include "layout/sram_layout.hpp"
#include "util/error.hpp"

namespace memstress::estimator {
namespace {

using defects::DefectKind;
using layout::BridgeCategory;
using layout::OpenCategory;

/// Synthetic detectability: VLV catches all bridges, Vmax all opens,
/// nothing else catches anything.
DetectabilityDb split_db() {
  DetectabilityDb db;
  auto add = [&db](DefectKind kind, int category, auto&& detector) {
    for (const double vdd : {1.0, 1.65, 1.8, 1.95})
      for (const double period : {100e-9, 25e-9, 15e-9}) {
        DbEntry e;
        e.kind = kind;
        e.category = category;
        e.resistance = 1e4;
        e.vdd = vdd;
        e.period = period;
        e.detected = detector(vdd, period);
        db.add(e);
      }
  };
  for (int cat = 0; cat <= static_cast<int>(BridgeCategory::Other); ++cat)
    add(DefectKind::Bridge, cat, [](double vdd, double) { return vdd < 1.2; });
  for (int cat = 0; cat <= static_cast<int>(OpenCategory::Other); ++cat)
    add(DefectKind::Open, cat, [](double vdd, double) { return vdd > 1.9; });
  return db;
}

defects::DefectSampler make_sampler(double bridge_fraction) {
  const auto model = layout::generate_sram_layout(8, 8);
  sram::BlockSpec block;
  block.rows = 2;
  block.cols = 1;
  defects::FabModel fab;
  fab.bridge_fraction = bridge_fraction;
  return defects::DefectSampler(
      defects::aggregate_sites(layout::extract_bridges(model),
                               layout::extract_opens(model)),
      fab, block);
}

TEST(StandardLegs, MatchThePaperSchedule) {
  const auto legs = standard_legs();
  ASSERT_EQ(legs.size(), 5u);
  EXPECT_DOUBLE_EQ(legs[0].at.vdd, 1.0);
  EXPECT_DOUBLE_EQ(legs[0].at.period, 100e-9);  // VLV at low frequency
  EXPECT_DOUBLE_EQ(legs[3].at.vdd, 1.95);
  EXPECT_DOUBLE_EQ(legs[3].at.period, 25e-9);   // Vmax at high frequency
}

TEST(TestLeg, TimeIsComplexityTimesPeriod)  {
  TestLeg leg{"x", {1.8, 25e-9}, 11};
  EXPECT_DOUBLE_EQ(leg.time_per_cell(), 11 * 25e-9);
}

TEST(EscapeFraction, ZeroLegsCatchNothing) {
  const auto db = split_db();
  const auto sampler = make_sampler(0.7);
  ScheduleSpec spec;
  spec.monte_carlo_defects = 500;
  EXPECT_DOUBLE_EQ(escape_fraction({}, db, sampler, spec), 1.0);
}

TEST(EscapeFraction, VlvCatchesTheBridgeFraction) {
  const auto db = split_db();
  const auto sampler = make_sampler(0.7);
  ScheduleSpec spec;
  spec.monte_carlo_defects = 4000;
  const std::vector<TestLeg> vlv_only{standard_legs()[0]};
  // VLV catches all bridges (70%): escapes ~30%.
  EXPECT_NEAR(escape_fraction(vlv_only, db, sampler, spec), 0.3, 0.03);
}

TEST(EscapeFraction, VlvPlusVmaxCatchesEverything) {
  const auto db = split_db();
  const auto sampler = make_sampler(0.7);
  ScheduleSpec spec;
  spec.monte_carlo_defects = 2000;
  const std::vector<TestLeg> both{standard_legs()[0], standard_legs()[3]};
  EXPECT_DOUBLE_EQ(escape_fraction(both, db, sampler, spec), 0.0);
}

TEST(OptimizeSchedule, PicksTheCheapestMeetingSchedule) {
  const auto db = split_db();
  const auto sampler = make_sampler(0.7);
  ScheduleSpec spec;
  spec.monte_carlo_defects = 2000;
  spec.target_dpm = 1.0;  // essentially zero escapes required
  const Schedule best = optimize_schedule(standard_legs(), db, sampler, spec);
  // In the split world only VLV + Vmax reach zero escapes; the optimizer
  // must pick exactly those two (other legs only add time).
  ASSERT_EQ(best.legs.size(), 2u);
  EXPECT_DOUBLE_EQ(best.legs[0].at.vdd, 1.0);
  EXPECT_DOUBLE_EQ(best.legs[1].at.vdd, 1.95);
  EXPECT_LE(best.dpm, 1.0);
}

TEST(OptimizeSchedule, FallsBackToBestWhenTargetUnreachable) {
  // A DB in which nothing is ever detected.
  DetectabilityDb db;
  for (int cat = 0; cat <= static_cast<int>(BridgeCategory::Other); ++cat)
    for (const double vdd : {1.0, 1.65, 1.8, 1.95})
      for (const double period : {100e-9, 25e-9, 15e-9}) {
        DbEntry e;
        e.kind = DefectKind::Bridge;
        e.category = cat;
        e.resistance = 1e4;
        e.vdd = vdd;
        e.period = period;
        e.detected = false;
        db.add(e);
      }
  for (int cat = 0; cat <= static_cast<int>(OpenCategory::Other); ++cat)
    for (const double vdd : {1.0, 1.65, 1.8, 1.95})
      for (const double period : {100e-9, 25e-9, 15e-9}) {
        DbEntry e;
        e.kind = DefectKind::Open;
        e.category = cat;
        e.resistance = 1e4;
        e.vdd = vdd;
        e.period = period;
        e.detected = false;
        db.add(e);
      }
  const auto sampler = make_sampler(0.7);
  ScheduleSpec spec;
  spec.monte_carlo_defects = 200;
  spec.target_dpm = 1.0;
  const Schedule best = optimize_schedule(standard_legs(), db, sampler, spec);
  EXPECT_DOUBLE_EQ(best.escape_fraction, 1.0);
  EXPECT_GT(best.dpm, spec.target_dpm);
}

TEST(ScheduleTradeoff, EnumeratesAllSubsetsSortedByTime) {
  const auto db = split_db();
  const auto sampler = make_sampler(0.7);
  ScheduleSpec spec;
  spec.monte_carlo_defects = 200;
  const auto curve = schedule_tradeoff(standard_legs(), db, sampler, spec);
  EXPECT_EQ(curve.size(), 31u);  // 2^5 - 1
  for (std::size_t i = 1; i < curve.size(); ++i)
    EXPECT_GE(curve[i].test_time_per_cell, curve[i - 1].test_time_per_cell);
}

TEST(Schedule, DescribeMentionsLegsAndDpm) {
  Schedule s;
  s.legs = {standard_legs()[0]};
  s.escape_fraction = 0.25;
  s.dpm = 1234.0;
  s.test_time_per_cell = 1.1e-6;
  const std::string text = s.describe();
  EXPECT_NE(text.find("VLV"), std::string::npos);
  EXPECT_NE(text.find("1234"), std::string::npos);
}

TEST(OptimizeSchedule, ValidatesInput) {
  const auto db = split_db();
  const auto sampler = make_sampler(0.7);
  ScheduleSpec spec;
  EXPECT_THROW(optimize_schedule({}, db, sampler, spec), Error);
}

}  // namespace
}  // namespace memstress::estimator
