#include "estimator/detectability.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "util/error.hpp"

namespace memstress::estimator {
namespace {

using defects::Defect;
using defects::DefectKind;
using layout::BridgeCategory;
using layout::OpenCategory;

DbEntry entry(DefectKind kind, int category, double r, double vdd, double period,
              bool detected, double vbd = 0.0) {
  DbEntry e;
  e.kind = kind;
  e.category = category;
  e.resistance = r;
  e.vbd = vbd;
  e.vdd = vdd;
  e.period = period;
  e.detected = detected;
  return e;
}

/// A synthetic database encoding a "VLV detects high-ohmic bridges" rule.
DetectabilityDb synthetic_db() {
  DetectabilityDb db;
  const int cat = static_cast<int>(BridgeCategory::CellTrueFalse);
  for (const double vdd : {1.0, 1.65, 1.8, 1.95}) {
    for (const double period : {100e-9, 25e-9, 15e-9}) {
      db.add(entry(DefectKind::Bridge, cat, 1e3, vdd, period, true));
      db.add(entry(DefectKind::Bridge, cat, 90e3, vdd, period, vdd < 1.2));
    }
  }
  const int open_cat = static_cast<int>(OpenCategory::CellAccess);
  for (const double vdd : {1.0, 1.65, 1.8, 1.95}) {
    for (const double period : {100e-9, 25e-9, 15e-9}) {
      // Opens detected only at Vmax in this synthetic world.
      db.add(entry(DefectKind::Open, open_cat, 30e3, vdd, period, vdd > 1.9));
    }
  }
  return db;
}

TEST(DetectabilityDb, ExactLookup) {
  const DetectabilityDb db = synthetic_db();
  const int cat = static_cast<int>(BridgeCategory::CellTrueFalse);
  EXPECT_TRUE(db.detected(DefectKind::Bridge, cat, 1e3, 1.8, 25e-9));
  EXPECT_FALSE(db.detected(DefectKind::Bridge, cat, 90e3, 1.8, 25e-9));
  EXPECT_TRUE(db.detected(DefectKind::Bridge, cat, 90e3, 1.0, 100e-9));
}

TEST(DetectabilityDb, NearestResistanceInLogSpace) {
  const DetectabilityDb db = synthetic_db();
  const int cat = static_cast<int>(BridgeCategory::CellTrueFalse);
  // 5 kOhm is log-closer to 1 kOhm than to 90 kOhm.
  EXPECT_TRUE(db.detected(DefectKind::Bridge, cat, 5e3, 1.8, 25e-9));
  // 40 kOhm is log-closer to 90 kOhm.
  EXPECT_FALSE(db.detected(DefectKind::Bridge, cat, 40e3, 1.8, 25e-9));
}

TEST(DetectabilityDb, ConditionDistanceDominatesResistance) {
  const DetectabilityDb db = synthetic_db();
  const int cat = static_cast<int>(BridgeCategory::CellTrueFalse);
  // Slightly off-grid voltage must still resolve to the nearest corner
  // rather than jumping to another resistance bin.
  EXPECT_TRUE(db.detected(DefectKind::Bridge, cat, 90e3, 1.02, 100e-9));
  EXPECT_FALSE(db.detected(DefectKind::Bridge, cat, 90e3, 1.78, 25e-9));
}

TEST(DetectabilityDb, UnknownClassThrows) {
  const DetectabilityDb db = synthetic_db();
  EXPECT_THROW(db.detected(DefectKind::Open,
                           static_cast<int>(OpenCategory::Wordline), 1e6, 1.8,
                           25e-9),
               Error);
}

TEST(DetectabilityDb, DefectOverloadUsesCategories) {
  const DetectabilityDb db = synthetic_db();
  Defect d;
  d.kind = DefectKind::Bridge;
  d.bridge_category = BridgeCategory::CellTrueFalse;
  d.resistance = 90e3;
  EXPECT_TRUE(db.detected(d, {1.0, 100e-9}));
  EXPECT_FALSE(db.detected(d, {1.8, 25e-9}));
}

TEST(DetectabilityDb, VbdAxisSeparatesEntries) {
  DetectabilityDb db;
  const int cat = static_cast<int>(BridgeCategory::CellGateOxide);
  db.add(entry(DefectKind::Bridge, cat, 5e3, 1.95, 25e-9, true, 1.85));
  db.add(entry(DefectKind::Bridge, cat, 5e3, 1.95, 25e-9, false, 2.4));
  EXPECT_TRUE(db.detected(DefectKind::Bridge, cat, 5e3, 1.95, 25e-9, 1.9));
  EXPECT_FALSE(db.detected(DefectKind::Bridge, cat, 5e3, 1.95, 25e-9, 2.5));
}

TEST(DetectabilityDb, ConditionsEnumerated) {
  const DetectabilityDb db = synthetic_db();
  EXPECT_EQ(db.conditions().size(), 12u);
}

TEST(DetectabilityDb, CsvRoundTrip) {
  const DetectabilityDb db = synthetic_db();
  const DetectabilityDb loaded = DetectabilityDb::from_csv(db.to_csv());
  ASSERT_EQ(loaded.size(), db.size());
  const int cat = static_cast<int>(BridgeCategory::CellTrueFalse);
  EXPECT_TRUE(loaded.detected(DefectKind::Bridge, cat, 90e3, 1.0, 100e-9));
  EXPECT_FALSE(loaded.detected(DefectKind::Bridge, cat, 90e3, 1.8, 25e-9));
}

TEST(DetectabilityDb, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/memstress_db_test.csv";
  synthetic_db().save(path);
  const DetectabilityDb loaded = DetectabilityDb::load(path);
  EXPECT_EQ(loaded.size(), synthetic_db().size());
  std::remove(path.c_str());
}

TEST(DetectabilityDb, BadCsvRejected) {
  EXPECT_THROW(DetectabilityDb::from_csv("wrong,header\n1,2\n"), Error);
  EXPECT_THROW(DetectabilityDb::load("/no/such/file.csv"), Error);
}

TEST(CornerOutcomes, ClassifiesVlvOnlyDefect) {
  const DetectabilityDb db = synthetic_db();
  Defect d;
  d.kind = DefectKind::Bridge;
  d.bridge_category = BridgeCategory::CellTrueFalse;
  d.resistance = 90e3;
  const CornerOutcomes out = corner_outcomes(db, d);
  EXPECT_TRUE(out.vlv);
  EXPECT_FALSE(out.vmin);
  EXPECT_FALSE(out.vnom);
  EXPECT_FALSE(out.vmax);
  EXPECT_FALSE(out.at_speed);
  EXPECT_FALSE(out.standard());
  EXPECT_TRUE(out.any());
}

TEST(CornerOutcomes, ClassifiesVmaxOnlyDefect) {
  const DetectabilityDb db = synthetic_db();
  Defect d;
  d.kind = DefectKind::Open;
  d.open_category = OpenCategory::CellAccess;
  d.resistance = 30e3;
  const CornerOutcomes out = corner_outcomes(db, d);
  EXPECT_FALSE(out.vlv);
  EXPECT_TRUE(out.vmax);
  // Vmax is a stress screen, not part of the standard (Vmin/Vnom) test.
  EXPECT_FALSE(out.standard());
  EXPECT_TRUE(out.any());
}

TEST(CornerOutcomes, AllClearForDetectedNowhere) {
  DetectabilityDb db;
  const int cat = static_cast<int>(BridgeCategory::CellNodeVdd);
  for (const double vdd : {1.0, 1.65, 1.8, 1.95})
    for (const double period : {100e-9, 25e-9, 15e-9})
      db.add(entry(DefectKind::Bridge, cat, 1e6, vdd, period, false));
  Defect d;
  d.kind = DefectKind::Bridge;
  d.bridge_category = BridgeCategory::CellNodeVdd;
  d.resistance = 1e6;
  EXPECT_FALSE(corner_outcomes(db, d).any());
}

}  // namespace
}  // namespace memstress::estimator
