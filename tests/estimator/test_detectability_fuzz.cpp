#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <string>

#include "estimator/detectability.hpp"
#include "util/error.hpp"

namespace memstress::estimator {
namespace {

using defects::DefectKind;

/// A random but syntactically valid database: arbitrary categories,
/// resistances spanning many decades, stress points on and off the paper's
/// grid. Seeded, so failures reproduce.
DetectabilityDb random_db(unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> category(0, 6);
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_real_distribution<double> log_r(1.0, 8.0);
  std::uniform_real_distribution<double> vdd(0.5, 2.5);
  std::uniform_real_distribution<double> vbd(0.0, 3.0);
  std::uniform_real_distribution<double> log_t(-9.0, -6.0);
  std::uniform_int_distribution<std::size_t> count(1, 60);

  DetectabilityDb db;
  const std::size_t n = count(rng);
  for (std::size_t i = 0; i < n; ++i) {
    DbEntry e;
    e.kind = coin(rng) ? DefectKind::Bridge : DefectKind::Open;
    e.category = category(rng);
    e.resistance = std::pow(10.0, log_r(rng));
    e.vbd = coin(rng) ? vbd(rng) : 0.0;
    e.vdd = vdd(rng);
    e.period = std::pow(10.0, log_t(rng));
    e.detected = coin(rng) != 0;
    db.add(e);
  }
  return db;
}

/// Expects from_csv to throw an Error whose message names the database, so
/// a user staring at a broken cache file knows which component rejected it.
void expect_rejected(const std::string& csv, const char* why) {
  try {
    DetectabilityDb::from_csv(csv);
    FAIL() << "malformed CSV accepted: " << why;
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("DetectabilityDb"), std::string::npos)
        << why << ": " << e.what();
  }
}

TEST(DetectabilityFuzz, SaveLoadSaveIsByteIdentical) {
  for (unsigned seed = 1; seed <= 10; ++seed) {
    const DetectabilityDb original = random_db(seed);
    const std::string csv1 = original.to_csv();
    const DetectabilityDb reloaded = DetectabilityDb::from_csv(csv1);
    ASSERT_EQ(reloaded.size(), original.size()) << "seed " << seed;
    const std::string csv2 = reloaded.to_csv();
    EXPECT_EQ(csv1, csv2) << "seed " << seed;
  }
}

TEST(DetectabilityFuzz, ReloadedDbAnswersLookupsIdentically) {
  const DetectabilityDb original = random_db(99);
  const DetectabilityDb reloaded =
      DetectabilityDb::from_csv(original.to_csv());
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> log_r(1.0, 8.0);
  std::uniform_real_distribution<double> vdd(0.5, 2.5);
  std::uniform_real_distribution<double> log_t(-9.0, -6.0);
  for (const auto& e : original.entries()) {
    for (int probe = 0; probe < 4; ++probe) {
      const double r = std::pow(10.0, log_r(rng));
      const double v = vdd(rng);
      const double t = std::pow(10.0, log_t(rng));
      EXPECT_EQ(original.detected(e.kind, e.category, r, v, t, e.vbd),
                reloaded.detected(e.kind, e.category, r, v, t, e.vbd));
    }
  }
}

TEST(DetectabilityFuzz, RejectsWrongHeader) {
  expect_rejected("kind,category,resistance\nbridge,0,100\n", "short header");
  expect_rejected(
      "kind,category,resistance,vbd,vdd,period,DETECTED\n", "renamed column");
  // A zero-byte cache is rejected one layer down, by the CSV parser itself.
  EXPECT_THROW(DetectabilityDb::from_csv(""), Error);
}

TEST(DetectabilityFuzz, RejectsTruncatedRow) {
  const std::string header =
      "kind,category,resistance,vbd,vdd,period,detected\n";
  expect_rejected(header + "bridge,0,100,0,1.8\n", "row cut short");
  // Byte-level truncation of a previously valid save (power loss mid-write).
  const std::string good = random_db(3).to_csv();
  expect_rejected(good.substr(0, good.size() - 4), "truncated tail");
}

TEST(DetectabilityFuzz, RejectsGarbageFields) {
  const std::string header =
      "kind,category,resistance,vbd,vdd,period,detected\n";
  expect_rejected(header + "bridge,zero,100,0,1.8,25e-9,1\n", "bad category");
  expect_rejected(header + "bridge,0,lots,0,1.8,25e-9,1\n", "bad resistance");
  expect_rejected(header + "bridge,0,100,0,1.8v,25e-9,1\n", "trailing junk");
  expect_rejected(header + "bridge,0,100,0,1.8,25e-9,yes\n", "bad detected");
  expect_rejected(header + "short,0,100,0,1.8,25e-9,1\n", "unknown kind");
}

TEST(DetectabilityFuzz, ErrorMessagesNameTheRow) {
  const std::string header =
      "kind,category,resistance,vbd,vdd,period,detected\n";
  const std::string csv = header + "bridge,0,100,0,1.8,25e-9,1\n" +
                          "open,1,nan-sense,0,1.8,25e-9,0\n";
  try {
    DetectabilityDb::from_csv(csv);
    FAIL() << "garbage row accepted";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("row 2"), std::string::npos) << what;
    EXPECT_NE(what.find("nan-sense"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace memstress::estimator
