// Fault-tolerant characterization: injected solver/chaos failures must be
// retried and then quarantined instead of aborting the sweep; checkpointed
// runs must resume to a byte-identical CSV after a crash; corrupt
// checkpoints must be rejected with a warning and a clean restart.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "estimator/coverage.hpp"
#include "estimator/detectability.hpp"
#include "march/library.hpp"
#include "util/chaos.hpp"
#include "util/checkpoint.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"

namespace memstress::estimator {
namespace {

namespace fs = std::filesystem;

CharacterizeSpec tiny_spec() {
  CharacterizeSpec spec;
  spec.block.rows = 2;
  spec.block.cols = 1;
  spec.test = march::test_11n();
  spec.vdds = {1.0, 1.8};
  spec.periods = {100e-9};
  spec.bridge_resistances = {1e3};
  spec.open_resistances = {1e6};
  spec.gox_vbds = {1.7};
  return spec;
}

class ChaosGuard {
 public:
  ~ChaosGuard() { chaos::disable(); }
};

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    dir_ = fs::temp_directory_path() /
           ("memstress_robust_" + tag + "_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  fs::path dir_;
};

/// The clean reference CSV, characterized once per process.
const std::string& baseline_csv() {
  static const std::string csv = [] {
    chaos::disable();
    return characterize(tiny_spec()).to_csv();
  }();
  return csv;
}

TEST(CharacterizeRobust, ChaosFailuresQuarantinedNotFatal) {
  ChaosGuard guard;
  const std::size_t total = [] {
    chaos::disable();
    return characterize(tiny_spec()).size();
  }();

  chaos::configure(0.8, 7);
  const DetectabilityDb db = characterize(tiny_spec());
  chaos::disable();

  // Every grid point is accounted: characterized or quarantined, no drops.
  EXPECT_EQ(db.size() + db.quarantine().size(), total);
  EXPECT_FALSE(db.quarantine().empty());
  EXPECT_GT(db.size(), 0u);
  for (const auto& q : db.quarantine()) {
    EXPECT_FALSE(q.defect_tag.empty());
    EXPECT_NE(q.reason.find("chaos"), std::string::npos);
    EXPECT_EQ(q.attempts, tiny_spec().max_attempts);
    const std::string line = q.describe();
    EXPECT_NE(line.find(q.defect_tag), std::string::npos);
    EXPECT_NE(line.find("attempts"), std::string::npos);
  }
}

TEST(CharacterizeRobust, RetriesFireAndChaosOffIsFree) {
  ChaosGuard guard;
  metrics::set_enabled(true);

  // A mid rate: some points recover on a retry (the injection stream
  // re-rolls per attempt), which is exactly what robust.retries counts.
  metrics::reset();
  chaos::configure(0.5, 11);
  const DetectabilityDb chaotic = characterize(tiny_spec());
  chaos::disable();
  long long retries = 0;
  for (const auto& c : metrics::collect().counters)
    if (c.name == "robust.retries") retries = c.value;
  EXPECT_GT(retries, 0);

  // With chaos back off the clean path is bit-for-bit what it always was.
  metrics::reset();
  const DetectabilityDb clean = characterize(tiny_spec());
  EXPECT_EQ(clean.to_csv(), baseline_csv());
  EXPECT_TRUE(clean.quarantine().empty());
  for (const auto& c : metrics::collect().counters) {
    if (c.name == "robust.retries" || c.name == "robust.quarantined_points")
      EXPECT_EQ(c.value, 0) << c.name;
  }
  metrics::reset();
  metrics::set_enabled(false);
}

TEST(CharacterizeRobust, QuarantineDeterministicAcrossThreadCounts) {
  ChaosGuard guard;
  chaos::configure(0.8, 7);
  CharacterizeSpec spec = tiny_spec();
  spec.threads = 1;
  const DetectabilityDb serial = characterize(spec);
  spec.threads = 4;
  const DetectabilityDb parallel = characterize(spec);
  chaos::disable();

  EXPECT_EQ(serial.to_csv(), parallel.to_csv());
  ASSERT_EQ(serial.quarantine().size(), parallel.quarantine().size());
  for (std::size_t i = 0; i < serial.quarantine().size(); ++i)
    EXPECT_EQ(serial.quarantine()[i].describe(),
              parallel.quarantine()[i].describe());
}

TEST(CharacterizeRobust, CompletedRunRemovesItsCheckpoint) {
  ScratchDir scratch("complete");
  CharacterizeSpec spec = tiny_spec();
  spec.checkpoint_path = scratch.path("grid.ckpt");
  spec.checkpoint_interval = 2;
  const DetectabilityDb db = characterize(spec);
  EXPECT_EQ(db.to_csv(), baseline_csv());
  EXPECT_FALSE(fs::exists(spec.checkpoint_path));
}

TEST(CharacterizeRobust, CorruptCheckpointWarnsAndRestartsScratch) {
  ScratchDir scratch("corrupt");
  CharacterizeSpec spec = tiny_spec();
  spec.checkpoint_path = scratch.path("grid.ckpt");
  {
    std::ofstream out(spec.checkpoint_path, std::ios::binary);
    out << "garbage that is definitely not a checkpoint\n";
  }
  std::vector<std::string> warnings;
  set_log_sink([&warnings](LogLevel level, const std::string& message) {
    if (level == LogLevel::Warn) warnings.push_back(message);
  });
  const DetectabilityDb db = characterize(spec);
  set_log_sink({});
  EXPECT_EQ(db.to_csv(), baseline_csv());
  ASSERT_FALSE(warnings.empty());
  EXPECT_NE(warnings[0].find("restarting from scratch"), std::string::npos);
}

TEST(CharacterizeRobust, ForeignFingerprintCheckpointRejected) {
  ScratchDir scratch("foreign");
  CharacterizeSpec spec = tiny_spec();
  spec.checkpoint_path = scratch.path("grid.ckpt");
  // A structurally valid checkpoint for a DIFFERENT grid: every point
  // "done", wrong fingerprint. Resuming from it would silently return wrong
  // entries; the header check must reject it.
  checkpoint::save(spec.checkpoint_path,
                   "characterize 1 00000000 3\n0 1\n1 0\n2 1\n");
  std::vector<std::string> warnings;
  set_log_sink([&warnings](LogLevel level, const std::string& message) {
    if (level == LogLevel::Warn) warnings.push_back(message);
  });
  const DetectabilityDb db = characterize(spec);
  set_log_sink({});
  EXPECT_EQ(db.to_csv(), baseline_csv());
  ASSERT_FALSE(warnings.empty());
  EXPECT_NE(warnings[0].find("does not match"), std::string::npos);
}

TEST(CharacterizeRobustDeath, CrashedRunResumesByteIdentical) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  // Fixed (pid-free) path: the death-test child is a separate process, and
  // the parent must find the checkpoint the crashed child left behind.
  CharacterizeSpec spec = tiny_spec();
  spec.checkpoint_path =
      (fs::temp_directory_path() / "memstress_robust_resume_grid.ckpt")
          .string();
  spec.checkpoint_interval = 2;
  fs::remove(spec.checkpoint_path);

  // Child: dies (simulated power cut) right after the second snapshot
  // lands. The crash config is parsed lazily at the first crash_point call,
  // which happens inside the characterize below — after the setenv.
  EXPECT_EXIT(
      {
        ::setenv("MEMSTRESS_CHAOS_CRASH", "characterize.checkpoint:2", 1);
        CharacterizeSpec child_spec = spec;
        child_spec.threads = 2;
        characterize(child_spec);
        std::_Exit(0);  // not reached: the run must die at the crash point
      },
      testing::ExitedWithCode(chaos::kCrashExitCode), "simulated crash");
  ASSERT_TRUE(fs::exists(spec.checkpoint_path));
  std::string snapshot;
  {
    std::ifstream in(spec.checkpoint_path, std::ios::binary);
    snapshot.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
  }

  // Resume at one thread, then restore the crash snapshot and resume at
  // eight: the acceptance bar is a byte-identical CSV either way.
  metrics::set_enabled(true);
  metrics::reset();
  spec.threads = 1;
  const DetectabilityDb resumed_serial = characterize(spec);
  long long resumed = 0;
  for (const auto& c : metrics::collect().counters)
    if (c.name == "robust.checkpoints_resumed") resumed = c.value;
  metrics::reset();
  metrics::set_enabled(false);
  EXPECT_EQ(resumed, 1);
  EXPECT_EQ(resumed_serial.to_csv(), baseline_csv());
  EXPECT_FALSE(fs::exists(spec.checkpoint_path));  // consumed on success

  {
    std::ofstream out(spec.checkpoint_path, std::ios::binary);
    out << snapshot;
  }
  spec.threads = 8;
  const DetectabilityDb resumed_parallel = characterize(spec);
  EXPECT_EQ(resumed_parallel.to_csv(), baseline_csv());
  EXPECT_FALSE(fs::exists(spec.checkpoint_path));
  fs::remove(spec.checkpoint_path);
}

TEST(CharacterizeRobust, Table1BoundsBracketPointEstimate) {
  ChaosGuard guard;
  chaos::disable();
  const DetectabilityDb clean = characterize(tiny_spec());
  const PopulationModel population = PopulationModel::calibrate();
  const defects::FabModel fab;

  // Empty quarantine: the bounds collapse onto the point values.
  {
    const FaultCoverageEstimator est(clean, population, fab);
    const EstimatorReport report = est.table1(MemoryGeometry{});
    EXPECT_EQ(report.quarantined, 0u);
    for (const auto& row : report.rows) {
      EXPECT_EQ(row.defect_coverage_lo, row.defect_coverage);
      EXPECT_EQ(row.defect_coverage_hi, row.defect_coverage);
      EXPECT_EQ(row.dpm_lo, row.dpm_value);
      EXPECT_EQ(row.dpm_hi, row.dpm_value);
    }
  }

  // Quarantine a bridge point at a resistance the grid does not cover: the
  // best/worst assumptions then disagree on nearby lookups and the bounds
  // open up around the point estimate.
  DetectabilityDb with_unknowns = clean;
  for (const double vdd : {1.0, 1.65, 1.8, 1.95}) {
    QuarantineEntry q;
    q.defect_tag = "bridge[test-quarantined]";
    q.kind = defects::DefectKind::Bridge;
    q.category = clean.entries().front().category;
    q.resistance = 50e3;
    q.vdd = vdd;
    q.period = vdd < 1.2 ? 100e-9 : 25e-9;
    q.reason = "newton-non-convergence: injected";
    q.attempts = 3;
    with_unknowns.add_quarantine(q);
  }
  const FaultCoverageEstimator est(with_unknowns, population, fab);
  const EstimatorReport report = est.table1(MemoryGeometry{});
  EXPECT_EQ(report.quarantined, 4u);
  bool some_row_widened = false;
  for (const auto& row : report.rows) {
    EXPECT_LE(row.defect_coverage_lo, row.defect_coverage);
    EXPECT_GE(row.defect_coverage_hi, row.defect_coverage);
    EXPECT_LE(row.dpm_lo, row.dpm_value);
    EXPECT_GE(row.dpm_hi, row.dpm_value);
    if (row.defect_coverage_hi > row.defect_coverage_lo) some_row_widened = true;
  }
  EXPECT_TRUE(some_row_widened);
}

TEST(CharacterizeRobust, WithQuarantineAssumedMaterializesEntries) {
  DetectabilityDb db;
  DbEntry e;
  e.kind = defects::DefectKind::Bridge;
  e.category = 0;
  e.resistance = 1e3;
  e.vdd = 1.8;
  e.period = 25e-9;
  e.detected = true;
  db.add(e);
  QuarantineEntry q;
  q.kind = defects::DefectKind::Bridge;
  q.category = 0;
  q.resistance = 9e3;
  q.vdd = 1.0;
  q.period = 100e-9;
  db.add_quarantine(q);

  for (const bool assumed : {false, true}) {
    const DetectabilityDb resolved = db.with_quarantine_assumed(assumed);
    ASSERT_EQ(resolved.size(), 2u);
    EXPECT_TRUE(resolved.quarantine().empty());
    EXPECT_EQ(resolved.entries().back().detected, assumed);
    EXPECT_EQ(resolved.entries().back().resistance, 9e3);
  }
  // The source database is untouched.
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.quarantine().size(), 1u);
}

}  // namespace
}  // namespace memstress::estimator
