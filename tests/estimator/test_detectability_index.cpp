// The indexed nearest-neighbour lookup must be observably identical to the
// linear scan it replaced — same winner, same tie-breaks, bit for bit. These
// tests keep a verbatim copy of the old O(entries) reference scan and fuzz
// the index against it.
#include "estimator/detectability.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace memstress::estimator {
namespace {

using defects::DefectKind;

/// The pre-index linear scan, kept as the behavioural reference.
bool reference_detected(const DetectabilityDb& db, DefectKind kind,
                        int category, double resistance, double vdd,
                        double period, double vbd = 0.0) {
  const DbEntry* best = nullptr;
  double best_cost = std::numeric_limits<double>::infinity();
  const double log_r = std::log(resistance);
  for (const auto& e : db.entries()) {
    if (e.kind != kind || e.category != category) continue;
    const double dv = (e.vdd - vdd) / 0.05;
    const double dt = (std::log(e.period) - std::log(period)) / 0.05;
    const double dr = std::log(e.resistance) - log_r;
    const double db_ = (e.vbd - vbd) * 10.0;
    const double cost = (dv * dv + dt * dt) * 1e6 + dr * dr + db_ * db_;
    if (cost < best_cost) {
      best_cost = cost;
      best = &e;
    }
  }
  require(best != nullptr, "reference: no entries for this defect class");
  return best->detected;
}

DetectabilityDb random_db(Rng& rng, int entry_count) {
  const double vdds[] = {1.0, 1.65, 1.8, 1.95};
  const double periods[] = {100e-9, 25e-9, 15e-9};
  DetectabilityDb db;
  for (int i = 0; i < entry_count; ++i) {
    DbEntry e;
    e.kind = rng.chance(0.5) ? DefectKind::Bridge : DefectKind::Open;
    e.category = static_cast<int>(rng.below(5));
    e.resistance = rng.log_uniform(10.0, 1e8);
    e.vbd = rng.chance(0.3) ? rng.uniform(0.8, 2.6) : 0.0;
    e.vdd = vdds[rng.below(4)];
    e.period = periods[rng.below(3)];
    e.detected = rng.chance(0.5);
    db.add(e);
  }
  return db;
}

TEST(DetectabilityIndex, RandomizedQueriesMatchLinearReference) {
  Rng rng(42);
  for (int round = 0; round < 20; ++round) {
    const DetectabilityDb db = random_db(rng, 200);
    for (int q = 0; q < 200; ++q) {
      const DefectKind kind =
          rng.chance(0.5) ? DefectKind::Bridge : DefectKind::Open;
      const int category = static_cast<int>(rng.below(5));
      const double r = rng.log_uniform(10.0, 1e8);
      // Mix on-grid and off-grid query conditions.
      const double vdd = rng.chance(0.5) ? 1.8 : rng.uniform(0.9, 2.0);
      const double period =
          rng.chance(0.5) ? 25e-9 : rng.log_uniform(10e-9, 200e-9);
      const double vbd = rng.chance(0.3) ? rng.uniform(0.0, 2.6) : 0.0;

      bool reference_threw = false;
      bool reference_result = false;
      try {
        reference_result =
            reference_detected(db, kind, category, r, vdd, period, vbd);
      } catch (const Error&) {
        reference_threw = true;
      }
      if (reference_threw) {
        EXPECT_THROW(db.detected(kind, category, r, vdd, period, vbd), Error);
      } else {
        EXPECT_EQ(db.detected(kind, category, r, vdd, period, vbd),
                  reference_result)
            << "round=" << round << " q=" << q;
      }
    }
  }
}

TEST(DetectabilityIndex, DuplicateCostEntriesKeepFirstEntryTieBreak) {
  // Two entries at the same grid point with contradictory verdicts: the
  // linear scan keeps the first, so the index must too.
  DetectabilityDb db;
  DbEntry e;
  e.kind = DefectKind::Bridge;
  e.category = 1;
  e.resistance = 1e4;
  e.vdd = 1.8;
  e.period = 25e-9;
  e.detected = true;
  db.add(e);
  e.detected = false;
  db.add(e);
  EXPECT_TRUE(db.detected(DefectKind::Bridge, 1, 1e4, 1.8, 25e-9));
  EXPECT_EQ(db.detected(DefectKind::Bridge, 1, 1e4, 1.8, 25e-9),
            reference_detected(db, DefectKind::Bridge, 1, 1e4, 1.8, 25e-9));
}

TEST(DetectabilityIndex, AddInvalidatesTheIndex) {
  DetectabilityDb db;
  DbEntry e;
  e.kind = DefectKind::Open;
  e.category = 2;
  e.resistance = 1e6;
  e.vdd = 1.8;
  e.period = 25e-9;
  e.detected = false;
  db.add(e);
  // First query builds the index.
  EXPECT_FALSE(db.detected(DefectKind::Open, 2, 1e5, 1.8, 25e-9));

  // A strictly closer entry added afterwards must win the same query.
  e.resistance = 1e5;
  e.detected = true;
  db.add(e);
  EXPECT_TRUE(db.detected(DefectKind::Open, 2, 1e5, 1.8, 25e-9));

  // A brand-new defect class also becomes visible.
  e.kind = DefectKind::Bridge;
  e.category = 4;
  db.add(e);
  EXPECT_TRUE(db.detected(DefectKind::Bridge, 4, 1e5, 1.8, 25e-9));
}

TEST(DetectabilityIndex, CopiesAndMovesRebuildCleanly) {
  Rng rng(7);
  DetectabilityDb original = random_db(rng, 100);
  // Build the original's index, then copy / move and re-query everything.
  (void)original.detected(original.entries()[0].kind,
                          original.entries()[0].category, 1e4, 1.8, 25e-9);
  const DetectabilityDb copy = original;
  ASSERT_EQ(copy.size(), original.size());
  for (int q = 0; q < 50; ++q) {
    const auto& probe = original.entries()[rng.below(original.size())];
    EXPECT_EQ(copy.detected(probe.kind, probe.category, probe.resistance,
                            probe.vdd, probe.period, probe.vbd),
              original.detected(probe.kind, probe.category, probe.resistance,
                                probe.vdd, probe.period, probe.vbd));
  }
  DetectabilityDb moved = std::move(original);
  EXPECT_EQ(moved.size(), copy.size());
  EXPECT_EQ(moved.detected(moved.entries()[0].kind, moved.entries()[0].category,
                           1e4, 1.8, 25e-9),
            copy.detected(copy.entries()[0].kind, copy.entries()[0].category,
                          1e4, 1.8, 25e-9));
}

TEST(DetectabilityIndex, ConditionsSortedAndDeduplicated) {
  Rng rng(11);
  const DetectabilityDb db = random_db(rng, 500);
  const auto conditions = db.conditions();
  EXPECT_EQ(conditions.size(), 12u);  // 4 vdds x 3 periods, all hit at n=500
  for (std::size_t i = 1; i < conditions.size(); ++i) {
    const bool ordered =
        conditions[i - 1].vdd < conditions[i].vdd ||
        (conditions[i - 1].vdd == conditions[i].vdd &&
         conditions[i - 1].period < conditions[i].period);
    EXPECT_TRUE(ordered) << "conditions() must be strictly sorted at " << i;
  }
}

}  // namespace
}  // namespace memstress::estimator
