#include "estimator/coverage.hpp"

#include <gtest/gtest.h>

#include "util/csv.hpp"

namespace memstress::estimator {
namespace {

using defects::DefectKind;
using layout::BridgeCategory;
using layout::OpenCategory;

/// Synthetic DB: every bridge category detected iff (vdd < 1.2 or R <= 1k);
/// opens detected iff vdd > 1.9.
DetectabilityDb synthetic_db() {
  DetectabilityDb db;
  for (int cat = 0; cat <= static_cast<int>(BridgeCategory::CellGateOxide); ++cat) {
    for (const double r : {20.0, 1e3, 10e3, 90e3}) {
      for (const double vdd : {1.0, 1.65, 1.8, 1.95}) {
        for (const double period : {100e-9, 25e-9}) {
          DbEntry e;
          e.kind = DefectKind::Bridge;
          e.category = cat;
          e.resistance = r;
          e.vdd = vdd;
          e.period = period;
          e.detected = vdd < 1.2 || r <= 1e3;
          db.add(e);
        }
      }
    }
  }
  for (int cat = 0; cat <= static_cast<int>(OpenCategory::SenseOut); ++cat) {
    for (const double r : {1e4, 1e6, 1e8}) {
      for (const double vdd : {1.0, 1.65, 1.8, 1.95}) {
        for (const double period : {100e-9, 25e-9}) {
          DbEntry e;
          e.kind = DefectKind::Open;
          e.category = cat;
          e.resistance = r;
          e.vdd = vdd;
          e.period = period;
          e.detected = vdd > 1.9;
          db.add(e);
        }
      }
    }
  }
  return db;
}

FaultCoverageEstimator make_estimator() {
  return FaultCoverageEstimator(synthetic_db(), PopulationModel::calibrate(),
                                defects::FabModel{});
}

TEST(MemoryGeometry, DerivedQuantities) {
  MemoryGeometry g;
  g.x_rows = 512;
  g.y_columns = 64;
  g.bits_per_word = 8;
  g.z_blocks = 1;
  EXPECT_EQ(g.cells(), 512L * 64 * 8);
  EXPECT_EQ(g.physical_columns(), 512);
  EXPECT_EQ(g.address_bits(), 9);
  EXPECT_GT(g.conductor_area_um2(), 0.0);
}

TEST(PopulationModel, ScalesCellCategoriesWithCellCount) {
  const PopulationModel pm = PopulationModel::calibrate();
  MemoryGeometry small{128, 32, 4, 1};
  MemoryGeometry doubled{128, 32, 4, 2};  // two blocks: everything doubles
  const ScaledPopulation a = pm.scale(small);
  const ScaledPopulation b = pm.scale(doubled);
  for (const auto& [cat, w] : a.bridges)
    EXPECT_NEAR(b.bridges.at(cat), 2.0 * w, 1e-9 * w)
        << layout::bridge_category_name(cat);
  for (const auto& [cat, w] : a.opens)
    EXPECT_NEAR(b.opens.at(cat), 2.0 * w, 1e-9 * w);
}

TEST(PopulationModel, CellSitesDominateLargeMemories) {
  const PopulationModel pm = PopulationModel::calibrate();
  const ScaledPopulation pop = pm.scale({512, 64, 8, 1});
  const double cell_weight = pop.bridges.at(BridgeCategory::CellTrueFalse);
  const double addr_weight = pop.bridges.at(BridgeCategory::AddressVdd);
  EXPECT_GT(cell_weight, 100.0 * addr_weight);
}

TEST(Estimator, LowOhmicBridgesCoveredEverywhere) {
  const auto est = make_estimator();
  const MemoryGeometry g{256, 32, 8, 1};
  EXPECT_NEAR(est.bridge_fault_coverage(g, 20.0, {1.8, 100e-9}), 1.0, 1e-9);
  EXPECT_NEAR(est.bridge_fault_coverage(g, 20.0, {1.0, 100e-9}), 1.0, 1e-9);
}

TEST(Estimator, HighOhmicBridgesOnlyCoveredAtVlv) {
  const auto est = make_estimator();
  const MemoryGeometry g{256, 32, 8, 1};
  EXPECT_NEAR(est.bridge_fault_coverage(g, 90e3, {1.0, 100e-9}), 1.0, 1e-9);
  EXPECT_NEAR(est.bridge_fault_coverage(g, 90e3, {1.8, 100e-9}), 0.0, 1e-9);
}

TEST(Estimator, DefectCoverageIsBinWeightedAverage) {
  const auto est = make_estimator();
  const MemoryGeometry g{256, 32, 8, 1};
  defects::FabModel fab;
  // At 1.8 V only bins <= 1 kOhm are covered in the synthetic world.
  double expected = 0.0;
  for (const auto& bin : fab.bridge_bins)
    if (bin.ohms <= 1e3) expected += bin.probability;
  EXPECT_NEAR(est.bridge_defect_coverage(g, {1.8, 100e-9}), expected, 1e-9);
  EXPECT_NEAR(est.bridge_defect_coverage(g, {1.0, 100e-9}), 1.0, 1e-9);
}

TEST(Estimator, OpenCoverageFollowsVmaxRule) {
  const auto est = make_estimator();
  const MemoryGeometry g{256, 32, 8, 1};
  EXPECT_NEAR(est.open_fault_coverage(g, {1.95, 25e-9}), 1.0, 1e-9);
  EXPECT_NEAR(est.open_fault_coverage(g, {1.8, 25e-9}), 0.0, 1e-9);
}

TEST(Estimator, Table1HasFourCornersAndVlvNormalization) {
  const auto est = make_estimator();
  const EstimatorReport report = est.table1({512, 64, 8, 1});
  ASSERT_EQ(report.rows.size(), 4u);
  EXPECT_EQ(report.rows[0].label, "1.00 - VLV");
  EXPECT_EQ(report.rows[3].label, "1.95 - Vmax");
  EXPECT_NEAR(report.rows[0].dpm_ratio, 1.0, 1e-9);
  // In the synthetic world VLV covers everything -> zero DPM at VLV, so the
  // normalization degrades gracefully to ratio 0 checks elsewhere; verify
  // the non-VLV rows have *more* DPM.
  EXPECT_GE(report.rows[2].dpm_value, report.rows[0].dpm_value);
  EXPECT_GT(report.yield, 0.0);
  EXPECT_LE(report.yield, 1.0);
}

TEST(Estimator, Table1CoverageColumnsMatchBins) {
  const auto est = make_estimator();
  defects::FabModel fab;
  const EstimatorReport report = est.table1({512, 64, 8, 1});
  ASSERT_EQ(report.resistance_bins.size(), fab.bridge_bins.size());
  for (const auto& row : report.rows)
    EXPECT_EQ(row.fc_by_resistance.size(), report.resistance_bins.size());
}

TEST(Estimator, ReportSerializesToCsv) {
  const auto est = make_estimator();
  const EstimatorReport report = est.table1({512, 64, 8, 1});
  const std::string text = report.to_csv();
  const CsvContent parsed = parse_csv(text);
  // Header: condition, vdd, one fc per bin, DC, DPM, ratio.
  EXPECT_EQ(parsed.header.size(), 2 + report.resistance_bins.size() + 3);
  ASSERT_EQ(parsed.rows.size(), 4u);
  EXPECT_EQ(parsed.rows[0][0], "1.00 - VLV");
  EXPECT_EQ(parsed.rows[3][0], "1.95 - Vmax");
  // Values round-trip as parseable numbers.
  for (const auto& row : parsed.rows)
    for (std::size_t i = 1; i < row.size(); ++i)
      EXPECT_NO_THROW((void)std::stod(row[i]));
}

TEST(Estimator, VlvRowDominatesCoverageInTable1) {
  const auto est = make_estimator();
  const EstimatorReport report = est.table1({512, 64, 8, 1});
  const CoverageRow& vlv = report.rows[0];
  for (std::size_t i = 1; i < report.rows.size(); ++i) {
    EXPECT_GE(vlv.defect_coverage, report.rows[i].defect_coverage);
    EXPECT_LE(vlv.dpm_value, report.rows[i].dpm_value);
  }
}

}  // namespace
}  // namespace memstress::estimator
