#include "estimator/dpm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace memstress::estimator {
namespace {

TEST(WilliamsBrown, PerfectCoverageShipsNoDefects) {
  EXPECT_DOUBLE_EQ(williams_brown_escape(0.9, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(dpm(0.9, 1.0), 0.0);
}

TEST(WilliamsBrown, ZeroCoverageShipsDefectFraction) {
  EXPECT_NEAR(williams_brown_escape(0.9, 0.0), 1.0 - 0.9, 1e-12);
}

TEST(WilliamsBrown, KnownValue) {
  // DL = 1 - Y^(1-DC): Y = 0.9, DC = 0.95 -> 1 - 0.9^0.05 ~= 0.5255%.
  EXPECT_NEAR(williams_brown_escape(0.9, 0.95), 1.0 - std::pow(0.9, 0.05), 1e-15);
  EXPECT_NEAR(dpm(0.9, 0.95), 5255.0, 20.0);
}

TEST(WilliamsBrown, MonotoneInCoverage) {
  double previous = 1.0;
  for (double dc = 0.0; dc <= 1.0; dc += 0.1) {
    const double escape = williams_brown_escape(0.85, dc);
    EXPECT_LE(escape, previous);
    previous = escape;
  }
}

TEST(WilliamsBrown, MonotoneInYield) {
  // Lower yield -> more escapes at fixed coverage.
  EXPECT_GT(williams_brown_escape(0.7, 0.9), williams_brown_escape(0.95, 0.9));
}

TEST(WilliamsBrown, ValidatesInput) {
  EXPECT_THROW(williams_brown_escape(0.0, 0.5), Error);
  EXPECT_THROW(williams_brown_escape(1.5, 0.5), Error);
  EXPECT_THROW(williams_brown_escape(0.9, -0.1), Error);
  EXPECT_THROW(williams_brown_escape(0.9, 1.1), Error);
}

TEST(PoissonYield, MatchesFormula) {
  EXPECT_NEAR(poisson_yield(1e6, 1e-7), std::exp(-0.1), 1e-12);
  EXPECT_DOUBLE_EQ(poisson_yield(0.0, 1e-7), 1.0);
  EXPECT_THROW(poisson_yield(-1.0, 1e-7), Error);
}

TEST(PoissonYield, PaperScaleSanity) {
  // A 4 x 256 Kbit device at ~1.1 um^2/cell with a healthy D0 should land
  // in the 85-99% yield band the study assumes.
  const double area = 4.0 * 256 * 1024 * 1.1;
  const double y = poisson_yield(area, 2.0e-8);
  EXPECT_GT(y, 0.85);
  EXPECT_LT(y, 0.999);
}

}  // namespace
}  // namespace memstress::estimator
