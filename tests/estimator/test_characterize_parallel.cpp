// Parallel characterization must be indistinguishable from the serial run:
// same entries, same order, byte-identical CSV. A tiny grid keeps the analog
// cost of these tests in the seconds range.
#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "estimator/detectability.hpp"
#include "march/library.hpp"

namespace memstress::estimator {
namespace {

CharacterizeSpec tiny_spec() {
  CharacterizeSpec spec;
  spec.block.rows = 2;
  spec.block.cols = 1;
  spec.test = march::test_11n();
  spec.vdds = {1.0, 1.8};
  spec.periods = {100e-9};
  spec.bridge_resistances = {1e3};
  spec.open_resistances = {1e6};
  spec.gox_vbds = {1.7};
  return spec;
}

TEST(CharacterizeParallelDeterminism, CsvByteIdenticalAcrossThreadCounts) {
  CharacterizeSpec spec = tiny_spec();
  spec.threads = 1;
  const std::string serial_csv = characterize(spec).to_csv();

  for (const int threads : {2, 4}) {
    spec.threads = threads;
    EXPECT_EQ(characterize(spec).to_csv(), serial_csv)
        << "thread count " << threads << " changed the database";
  }
}

TEST(CharacterizeParallelDeterminism, ProgressCallbackCapturesStateSafely) {
  CharacterizeSpec spec = tiny_spec();
  spec.threads = 4;
  // A capturing lambda — impossible with the old raw function pointer — and
  // one invocation per grid point even when the sweep fans out.
  std::atomic<int> lines{0};
  const DetectabilityDb db =
      characterize(spec, [&lines](const std::string& line) {
        EXPECT_NE(line.find("@"), std::string::npos);
        lines.fetch_add(1);
      });
  EXPECT_EQ(static_cast<std::size_t>(lines.load()), db.size());
}

}  // namespace
}  // namespace memstress::estimator
