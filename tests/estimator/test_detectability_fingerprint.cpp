// The characterization-fingerprint guard: a DetectabilityDb CSV cache
// carries the CRC32 of the CharacterizeSpec that produced it, and a load
// that expects a different fingerprint is rejected whole — the bug class
// where a stale or foreign cache silently serves wrong detectability data
// into every downstream coverage/DPM/schedule answer.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/pipeline.hpp"
#include "estimator/detectability.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"

namespace memstress::estimator {
namespace {

DetectabilityDb synthetic_db() {
  DetectabilityDb db;
  for (int i = 0; i < 4; ++i) {
    DbEntry e;
    e.kind = i % 2 == 0 ? defects::DefectKind::Bridge
                        : defects::DefectKind::Open;
    e.category = i;
    e.resistance = 1e3 * (i + 1);
    e.vdd = 1.8;
    e.period = 25e-9;
    e.detected = i % 2 == 0;
    db.add(e);
  }
  return db;
}

TEST(DetectabilityFingerprint, SpecFingerprintIsDeterministic) {
  CharacterizeSpec spec;
  spec.block.rows = 2;
  spec.block.cols = 1;
  const std::string fp = spec_fingerprint(spec);
  EXPECT_EQ(fp.size(), 8u);  // 8 hex chars of CRC32
  EXPECT_EQ(spec_fingerprint(spec), fp);

  // Execution-only knobs never change the fingerprint: the produced
  // database is byte-identical at any thread/retry/checkpoint setting.
  CharacterizeSpec same = spec;
  same.threads = 7;
  same.max_attempts = 9;
  same.checkpoint_path = "/tmp/elsewhere";
  EXPECT_EQ(spec_fingerprint(same), fp);
}

TEST(DetectabilityFingerprint, SpecFingerprintSeesEveryGridAxis) {
  CharacterizeSpec base;
  base.block.rows = 2;
  base.block.cols = 1;
  const std::string fp = spec_fingerprint(base);

  CharacterizeSpec vdds = base;
  vdds.vdds = {1.0, 1.8};
  EXPECT_NE(spec_fingerprint(vdds), fp);

  CharacterizeSpec periods = base;
  periods.periods = {100e-9};
  EXPECT_NE(spec_fingerprint(periods), fp);

  CharacterizeSpec bridges = base;
  bridges.bridge_resistances = {1e3};
  EXPECT_NE(spec_fingerprint(bridges), fp);

  CharacterizeSpec opens = base;
  opens.open_resistances = {1e6};
  EXPECT_NE(spec_fingerprint(opens), fp);

  CharacterizeSpec vbds = base;
  vbds.gox_vbds = {1.7};
  EXPECT_NE(spec_fingerprint(vbds), fp);

  CharacterizeSpec gox = base;
  gox.gox_resistance = 7e3;
  EXPECT_NE(spec_fingerprint(gox), fp);

  CharacterizeSpec block = base;
  block.block.rows = 4;
  EXPECT_NE(spec_fingerprint(block), fp);

  CharacterizeSpec solver = base;
  solver.ate.steps_per_cycle += 32;
  EXPECT_NE(spec_fingerprint(solver), fp);
}

TEST(DetectabilityFingerprint, CsvRoundTripPreservesFingerprint) {
  DetectabilityDb db = synthetic_db();
  db.set_fingerprint("deadbeef");
  const std::string csv = db.to_csv();
  EXPECT_EQ(csv.rfind("#fingerprint=deadbeef\n", 0), 0u)
      << "fingerprint must be the first line of the CSV";

  const DetectabilityDb loaded = DetectabilityDb::from_csv(csv);
  EXPECT_EQ(loaded.fingerprint(), "deadbeef");
  EXPECT_EQ(loaded.size(), db.size());
  // Save -> load -> save is byte-identical, fingerprint line included.
  EXPECT_EQ(loaded.to_csv(), csv);
}

TEST(DetectabilityFingerprint, EmptyFingerprintKeepsLegacyFormat) {
  const DetectabilityDb db = synthetic_db();
  const std::string csv = db.to_csv();
  EXPECT_EQ(csv.rfind("kind,", 0), 0u)
      << "no fingerprint line for a database without one";
  const DetectabilityDb loaded = DetectabilityDb::from_csv(csv);
  EXPECT_TRUE(loaded.fingerprint().empty());
  EXPECT_EQ(loaded.to_csv(), csv);
}

TEST(DetectabilityFingerprint, MismatchRejectedWithRowNumberedError) {
  DetectabilityDb db = synthetic_db();
  db.set_fingerprint("deadbeef");
  const std::string csv = db.to_csv();
  try {
    DetectabilityDb::from_csv(csv, "0badf00d");
    FAIL() << "expected a fingerprint-mismatch rejection";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("DetectabilityDb"), std::string::npos) << what;
    EXPECT_NE(what.find("row 1"), std::string::npos) << what;
    EXPECT_NE(what.find("mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find("deadbeef"), std::string::npos) << what;
    EXPECT_NE(what.find("0badf00d"), std::string::npos) << what;
  }
}

TEST(DetectabilityFingerprint, MissingFingerprintRejectedWhenExpected) {
  const std::string legacy_csv = synthetic_db().to_csv();
  try {
    DetectabilityDb::from_csv(legacy_csv, "0badf00d");
    FAIL() << "expected a missing-fingerprint rejection";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("DetectabilityDb"), std::string::npos) << what;
    EXPECT_NE(what.find("row 1"), std::string::npos) << what;
    EXPECT_NE(what.find("missing"), std::string::npos) << what;
  }
  // Without an expectation the legacy file still loads (hand-built
  // databases and non-cache uses of from_csv are unaffected).
  EXPECT_NO_THROW(DetectabilityDb::from_csv(legacy_csv));
}

TEST(DetectabilityFingerprint, CopiesAndMovesCarryTheFingerprint) {
  DetectabilityDb db = synthetic_db();
  db.set_fingerprint("cafef00d");

  const DetectabilityDb copied(db);
  EXPECT_EQ(copied.fingerprint(), "cafef00d");

  DetectabilityDb assigned;
  assigned = db;
  EXPECT_EQ(assigned.fingerprint(), "cafef00d");

  DetectabilityDb moved(std::move(assigned));
  EXPECT_EQ(moved.fingerprint(), "cafef00d");

  DetectabilityDb move_assigned;
  move_assigned = std::move(moved);
  EXPECT_EQ(move_assigned.fingerprint(), "cafef00d");

  QuarantineEntry q;
  q.defect_tag = "q";
  db.add_quarantine(q);
  EXPECT_EQ(db.with_quarantine_assumed(true).fingerprint(), "cafef00d");
}

// ---------------------------------------------------------------------------
// Pipeline integration: share_database() must reject a tampered cache and
// fall back to re-characterizing instead of serving the wrong data.

core::PipelineConfig tiny_config(const std::string& cache_path) {
  core::PipelineConfig config;
  config.block.rows = 2;
  config.block.cols = 1;
  config.layout_rows = 4;
  config.layout_cols = 4;
  config.characterization.vdds = {1.0, 1.8};
  config.characterization.periods = {100e-9};
  config.characterization.bridge_resistances = {1e3};
  config.characterization.open_resistances = {1e6};
  config.characterization.gox_vbds = {1.7};
  config.db_cache_path = cache_path;
  config.metrics = 1;
  return config;
}

long long counter_value(const char* name) {
  return memstress::metrics::counter(name).value();
}

TEST(DetectabilityFingerprint, StaleCacheIsRejectedAndRecharacterized) {
  const std::string cache =
      ::testing::TempDir() + "/memstress_stale_cache.csv";
  std::remove(cache.c_str());

  // Ground truth: a fresh characterization (which also writes the cache).
  std::string fresh_csv;
  {
    core::StressEvaluationPipeline pipeline(tiny_config(cache));
    fresh_csv = pipeline.database().to_csv();
    EXPECT_FALSE(pipeline.database().fingerprint().empty());
    ASSERT_TRUE(std::filesystem::exists(cache));
  }

  // Poison the cache: a foreign database whose entries would visibly skew
  // every answer (all escapes), stamped with a wrong fingerprint.
  {
    DetectabilityDb foreign = synthetic_db();
    foreign.set_fingerprint("00000000");
    foreign.save(cache);
  }
  memstress::metrics::reset();
  {
    core::StressEvaluationPipeline pipeline(tiny_config(cache));
    // Re-characterized: identical to the fresh run, not the poisoned file.
    EXPECT_EQ(pipeline.database().to_csv(), fresh_csv);
    EXPECT_EQ(counter_value("pipeline.db_cache_rejected"), 1);
    EXPECT_EQ(counter_value("pipeline.db_cache_loads"), 0)
        << "a rejected cache must not count as a load";
  }

  // The rejected file was overwritten by the re-characterization: a third
  // pipeline loads it cleanly.
  memstress::metrics::reset();
  {
    core::StressEvaluationPipeline pipeline(tiny_config(cache));
    EXPECT_EQ(pipeline.database().to_csv(), fresh_csv);
    EXPECT_EQ(counter_value("pipeline.db_cache_loads"), 1);
    EXPECT_EQ(counter_value("pipeline.db_cache_rejected"), 0);
  }
  std::remove(cache.c_str());
  memstress::metrics::reset();
  memstress::metrics::set_enabled(false);
}

TEST(DetectabilityFingerprint, LegacyCacheWithoutFingerprintIsRejected) {
  const std::string cache =
      ::testing::TempDir() + "/memstress_legacy_cache.csv";
  std::remove(cache.c_str());

  std::string fresh_csv;
  {
    core::StressEvaluationPipeline pipeline(tiny_config(cache));
    fresh_csv = pipeline.database().to_csv();
  }
  // Strip the fingerprint line: exactly what a pre-fingerprint cache file
  // looks like on disk.
  {
    ASSERT_EQ(fresh_csv.rfind("#fingerprint=", 0), 0u);
    const std::string legacy = fresh_csv.substr(fresh_csv.find('\n') + 1);
    std::ofstream out(cache, std::ios::binary | std::ios::trunc);
    out << legacy;
  }
  memstress::metrics::reset();
  {
    core::StressEvaluationPipeline pipeline(tiny_config(cache));
    EXPECT_EQ(pipeline.database().to_csv(), fresh_csv);
    EXPECT_EQ(counter_value("pipeline.db_cache_rejected"), 1);
    EXPECT_EQ(counter_value("pipeline.db_cache_loads"), 0);
  }
  std::remove(cache.c_str());
  memstress::metrics::reset();
  memstress::metrics::set_enabled(false);
}

}  // namespace
}  // namespace memstress::estimator
