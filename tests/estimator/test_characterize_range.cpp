// characterize_grid()/characterize_range(): the worker half of the
// distributed coordinator. The contract pinned here is that any shard
// split of the canonical grid merges back to the exact bytes of a
// single-node characterize() — shard boundaries are invisible.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "estimator/detectability.hpp"
#include "march/library.hpp"
#include "util/error.hpp"

namespace memstress::estimator {
namespace {

CharacterizeSpec tiny_spec() {
  CharacterizeSpec spec;
  spec.block.rows = 2;
  spec.block.cols = 1;
  spec.test = march::test_11n();
  spec.vdds = {1.0, 1.8};
  spec.periods = {100e-9};
  spec.bridge_resistances = {1e3};
  spec.open_resistances = {1e6};
  spec.gox_vbds = {1.7};
  spec.threads = 1;
  return spec;
}

/// Merge per-shard verdicts over the enumerated grid the way the
/// coordinator does (ASSERTs, so callers must be the test body's scope).
void merge(const CharacterizeSpec& spec, const std::vector<GridPoint>& grid,
           const std::vector<PointVerdict>& verdicts, DetectabilityDb& db) {
  db = DetectabilityDb();
  db.set_fingerprint(spec_fingerprint(spec));
  std::vector<int> detected(grid.size(), -1);
  for (const PointVerdict& v : verdicts) {
    ASSERT_FALSE(v.quarantined) << "tiny grid must simulate cleanly";
    detected[v.index] = v.detected ? 1 : 0;
  }
  for (std::size_t i = 0; i < grid.size(); ++i) {
    ASSERT_GE(detected[i], 0) << "grid point " << i << " never resolved";
    DbEntry entry = grid[i].entry;
    entry.detected = detected[i] == 1;
    db.add(entry);
  }
}

TEST(CharacterizeRange, ShardSplitsMergeToTheSingleNodeBytes) {
  const CharacterizeSpec spec = tiny_spec();
  const std::string full_csv = characterize(spec).to_csv();
  const std::vector<GridPoint> grid = characterize_grid(spec);
  ASSERT_GT(grid.size(), 4u);

  for (const std::size_t shard : {std::size_t{1}, std::size_t{3},
                                  grid.size()}) {
    std::vector<PointVerdict> verdicts;
    for (std::size_t begin = 0; begin < grid.size(); begin += shard) {
      const std::size_t end = std::min(grid.size(), begin + shard);
      const std::vector<PointVerdict> part =
          characterize_range(spec, begin, end);
      EXPECT_EQ(part.size(), end - begin);
      verdicts.insert(verdicts.end(), part.begin(), part.end());
    }
    DetectabilityDb db;
    merge(spec, grid, verdicts, db);
    EXPECT_EQ(db.to_csv(), full_csv)
        << "shard size " << shard << " changed the merged bytes";
  }
}

TEST(CharacterizeRange, GridEnumerationMatchesTheDatabaseOrder) {
  const CharacterizeSpec spec = tiny_spec();
  const DetectabilityDb db = characterize(spec);
  const std::vector<GridPoint> grid = characterize_grid(spec);
  ASSERT_EQ(grid.size(), db.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(grid[i].entry.kind, db.entries()[i].kind);
    EXPECT_EQ(grid[i].entry.category, db.entries()[i].category);
    EXPECT_EQ(grid[i].entry.resistance, db.entries()[i].resistance);
    EXPECT_EQ(grid[i].entry.vdd, db.entries()[i].vdd);
    EXPECT_EQ(grid[i].entry.period, db.entries()[i].period);
    EXPECT_FALSE(grid[i].defect_tag.empty());
  }
}

TEST(CharacterizeRange, RejectsBadBounds) {
  const CharacterizeSpec spec = tiny_spec();
  const std::size_t points = characterize_grid(spec).size();
  EXPECT_THROW(characterize_range(spec, 2, 1), Error);
  EXPECT_THROW(characterize_range(spec, 0, points + 1), Error);
}

}  // namespace
}  // namespace memstress::estimator
