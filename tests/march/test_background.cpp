#include <gtest/gtest.h>

#include "march/engine.hpp"
#include "march/library.hpp"

namespace memstress::march {
namespace {

using sram::BehavioralSram;
using sram::FailureEnvelope;
using sram::FaultType;
using sram::InjectedFault;

TEST(Checkerboard, FaultFreePassesWithEveryLibraryTest) {
  for (const auto& test : all_tests()) {
    BehavioralSram mem(6, 6);
    RunOptions options;
    options.background = DataBackground::Checkerboard;
    EXPECT_TRUE(run_march(mem, test, options).passed()) << test.name;
  }
}

TEST(Checkerboard, StillDetectsStuckAtFaults) {
  for (const bool stuck_value : {false, true}) {
    BehavioralSram mem(4, 4);
    InjectedFault f;
    f.type = stuck_value ? FaultType::StuckAt1 : FaultType::StuckAt0;
    f.row = 2;
    f.col = 1;
    f.envelope = FailureEnvelope::always();
    mem.add_fault(f);
    RunOptions options;
    options.background = DataBackground::Checkerboard;
    EXPECT_FALSE(run_march(mem, test_11n(), options).passed());
  }
}

TEST(Checkerboard, ActivatesNeighbourStateCouplingThatSolidMisses) {
  // CFst: the victim is forced to 0 while the aggressor (a direct
  // neighbour) holds 1. Under a solid background both cells always carry
  // the same value through the march elements, so an aggressor-at-1 /
  // victim-at-0 combination never arises within an element; the
  // checkerboard background creates it on every visit.
  auto make_memory = [] {
    BehavioralSram mem(4, 4);
    InjectedFault f;
    f.type = FaultType::CouplingState;
    f.row = 1;       // aggressor
    f.col = 1;
    f.aux_row = 1;   // victim: horizontal neighbour
    f.aux_col = 2;
    f.value = false; // victim forced to 0 while aggressor holds 1
    f.envelope = FailureEnvelope::always();
    mem.add_fault(f);
    return mem;
  };

  // MATS++ with a solid background misses it: by the time the victim is
  // read, the march has rewritten it.
  {
    BehavioralSram mem = make_memory();
    RunOptions options;
    options.background = DataBackground::Solid;
    EXPECT_TRUE(run_march(mem, mats_plus_plus(), options).passed());
  }
  // The same test with a checkerboard background exposes it.
  {
    BehavioralSram mem = make_memory();
    RunOptions options;
    options.background = DataBackground::Checkerboard;
    EXPECT_FALSE(run_march(mem, mats_plus_plus(), options).passed());
  }
}

TEST(Checkerboard, FailLogReportsPhysicalExpectedValues) {
  BehavioralSram mem(4, 4);
  InjectedFault f;
  f.type = FaultType::StuckAt1;
  f.row = 0;
  f.col = 1;  // odd parity: logical values are inverted here
  f.envelope = FailureEnvelope::always();
  mem.add_fault(f);
  RunOptions options;
  options.background = DataBackground::Checkerboard;
  const FailLog log = run_march(mem, test_11n(), options);
  ASSERT_FALSE(log.passed());
  for (const auto& fail : log.fails()) {
    // A stuck-at-1 cell fails exactly when the physically expected value
    // is 0, whatever the logical march op said.
    EXPECT_FALSE(fail.expected);
    EXPECT_TRUE(fail.observed);
  }
}

}  // namespace
}  // namespace memstress::march
