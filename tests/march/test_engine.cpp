#include "march/engine.hpp"

#include <gtest/gtest.h>

#include "march/library.hpp"
#include "util/error.hpp"

namespace memstress::march {
namespace {

using sram::BehavioralSram;
using sram::FailureEnvelope;
using sram::FaultType;
using sram::InjectedFault;

InjectedFault fault(FaultType type, int row, int col,
                    FailureEnvelope envelope = FailureEnvelope::always()) {
  InjectedFault f;
  f.type = type;
  f.row = row;
  f.col = col;
  f.envelope = envelope;
  return f;
}

TEST(RunMarch, FaultFreeMemoryPassesEveryLibraryTest) {
  for (const auto& test : all_tests()) {
    BehavioralSram mem(8, 8);
    const FailLog log = run_march(mem, test);
    EXPECT_TRUE(log.passed()) << test.name << ": " << log.summary(test);
  }
}

TEST(RunMarch, DetectsStuckAt0) {
  BehavioralSram mem(4, 4);
  mem.add_fault(fault(FaultType::StuckAt0, 1, 2));
  const FailLog log = run_march(mem, test_11n());
  ASSERT_FALSE(log.passed());
  const auto cells = log.failing_cells();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(*cells.begin(), std::make_pair(1, 2));
  // Stuck-at-0 fails when reading expected 1s.
  for (const auto& f : log.fails()) {
    EXPECT_TRUE(f.expected);
    EXPECT_FALSE(f.observed);
  }
}

TEST(RunMarch, DetectsStuckAt1WithChip1Signature) {
  // A stuck-at-1 cell (the paper's Chip-1 behaviour at VLV) must fail
  // exactly the three bitmap elements the paper reports, all reading '0'.
  BehavioralSram mem(4, 4);
  mem.add_fault(fault(FaultType::StuckAt1, 2, 1));
  const MarchTest test = test_11n();
  const FailLog log = run_march(mem, test);
  ASSERT_FALSE(log.passed());
  const auto sigs = log.element_signatures(test);
  EXPECT_EQ(sigs, (std::set<std::string>{"{R0W1}", "{R1W0R0}", "{R0W1R1}"}));
  for (const auto& f : log.fails()) {
    EXPECT_FALSE(f.expected);  // fails while reading 0
    EXPECT_TRUE(f.observed);
  }
}

TEST(RunMarch, DetectsTransitionFaults) {
  for (const auto type : {FaultType::TransitionUp, FaultType::TransitionDown}) {
    BehavioralSram mem(4, 4);
    mem.add_fault(fault(type, 0, 0));
    EXPECT_FALSE(run_march(mem, test_11n()).passed());
  }
}

TEST(RunMarch, DetectsReadDestructiveWithMarchSs) {
  // March SS performs back-to-back reads, the canonical detector for
  // read-destructive faults.
  BehavioralSram mem(4, 4);
  mem.add_fault(fault(FaultType::ReadDestructive, 3, 3));
  EXPECT_FALSE(run_march(mem, march_ss()).passed());
}

TEST(RunMarch, DetectsCouplingInversion) {
  BehavioralSram mem(4, 4);
  InjectedFault f = fault(FaultType::CouplingInversion, 1, 1);
  f.aux_row = 2;
  f.aux_col = 2;
  mem.add_fault(f);
  EXPECT_FALSE(run_march(mem, march_c_minus()).passed());
  BehavioralSram mem2(4, 4);
  mem2.add_fault(f);
  EXPECT_FALSE(run_march(mem2, test_11n()).passed());
}

TEST(RunMarch, DetectsDecoderFaults) {
  for (const auto type : {FaultType::DecoderWrongRow, FaultType::DecoderNoSelect,
                          FaultType::DecoderMultiRow}) {
    BehavioralSram mem(4, 2);
    InjectedFault f = fault(type, 1, -1);
    f.aux_row = 2;
    mem.add_fault(f);
    EXPECT_FALSE(run_march(mem, test_11n()).passed())
        << fault_type_name(type);
  }
}

TEST(RunMarch, EnvelopeControlsDetection) {
  BehavioralSram mem(4, 4);
  mem.add_fault(fault(FaultType::StuckAt1, 0, 0, FailureEnvelope::low_voltage(1.2)));
  mem.set_condition({1.8, 25e-9});
  EXPECT_TRUE(run_march(mem, test_11n()).passed());
  mem.set_condition({1.0, 100e-9});
  EXPECT_FALSE(run_march(mem, test_11n()).passed());
}

TEST(RunMarch, MatsPlusMissesSomeCouplingThatMarchCMinusCatches) {
  // CFst with a victim at a *higher* address than the aggressor, forced
  // while the aggressor holds 1: the down-elements of March C- catch it.
  InjectedFault f = fault(FaultType::CouplingState, 2, 2);
  f.aux_row = 1;
  f.aux_col = 1;
  f.value = true;
  BehavioralSram mem(4, 4);
  mem.add_fault(f);
  EXPECT_FALSE(run_march(mem, march_c_minus()).passed());
}

TEST(RunMarch, FailLogRecordsCycleAndOpIndices) {
  BehavioralSram mem(2, 2);
  mem.add_fault(fault(FaultType::StuckAt0, 0, 0));
  const FailLog log = run_march(mem, test_11n());
  ASSERT_FALSE(log.passed());
  const FailRecord& first = log.fails().front();
  EXPECT_GE(first.cycle, 0);
  EXPECT_GE(first.element, 1);  // element 0 is the write-only initializer
  EXPECT_EQ(first.row, 0);
  EXPECT_EQ(first.col, 0);
}

TEST(RunMarch, MaxFailRecordsCapsTheLog) {
  BehavioralSram mem(8, 8);
  // Whole-memory stuck-at: enormous fail count.
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c) mem.add_fault(fault(FaultType::StuckAt0, r, c));
  RunOptions options;
  options.max_fail_records = 10;
  const FailLog log = run_march(mem, test_11n(), options);
  EXPECT_EQ(log.fails().size(), 10u);
}

TEST(RunMarch, ColumnMajorAddressMapVisitsAllCells) {
  BehavioralSram mem(4, 4);
  mem.add_fault(fault(FaultType::StuckAt1, 3, 1));
  RunOptions options;
  options.address_map = AddressMap::ColumnMajor;
  EXPECT_FALSE(run_march(mem, test_11n(), options).passed());
}

TEST(RunMarch, SummaryMentionsElements) {
  BehavioralSram mem(2, 2);
  mem.add_fault(fault(FaultType::StuckAt1, 0, 1));
  const MarchTest test = test_11n();
  const FailLog log = run_march(mem, test);
  const std::string text = log.summary(test);
  EXPECT_NE(text.find("FAIL"), std::string::npos);
  EXPECT_NE(text.find("{R0W1}"), std::string::npos);
}

TEST(RunMarch, PassSummaryIsShort) {
  BehavioralSram mem(2, 2);
  const FailLog log = run_march(mem, mats_plus_plus());
  EXPECT_EQ(log.summary(mats_plus_plus()), "PASS (MATS++)");
}

TEST(MarchCycles, MultipliesComplexityByCells) {
  EXPECT_EQ(march_cycles(test_11n(), 256 * 1024), 11L * 256 * 1024);
  EXPECT_EQ(march_cycles(mats_plus_plus(), 100), 600);
}

TEST(RunMarch, EmptyTestRejected) {
  BehavioralSram mem(2, 2);
  MarchTest empty;
  EXPECT_THROW(run_march(mem, empty), Error);
}

}  // namespace
}  // namespace memstress::march
