#include <gtest/gtest.h>

#include "march/engine.hpp"
#include "march/library.hpp"
#include "util/error.hpp"

namespace memstress::march {
namespace {

using sram::BehavioralSram;
using sram::FailureEnvelope;
using sram::FaultType;
using sram::InjectedFault;

InjectedFault stale_bit(int bit, FailureEnvelope envelope) {
  InjectedFault f;
  f.type = FaultType::DecoderStaleBit;
  f.row = 0;
  f.col = -1;
  f.aux_row = bit;
  f.envelope = envelope;
  return f;
}

TEST(RotatedAddressing, VisitsEveryCellExactlyOncePerElement) {
  // A stuck-at in any cell must still be found under every rotation: the
  // rotated order is a permutation, not a subset.
  for (int rotation = 0; rotation < 6; ++rotation) {
    BehavioralSram mem(8, 8);  // 64 cells = 2^6
    InjectedFault f;
    f.type = FaultType::StuckAt0;
    f.row = 5;
    f.col = 3;
    f.envelope = FailureEnvelope::always();
    mem.add_fault(f);
    RunOptions options;
    options.rotate_bits = rotation;
    EXPECT_FALSE(run_march(mem, test_11n(), options).passed())
        << "rotation " << rotation;
  }
}

TEST(RotatedAddressing, RequiresPowerOfTwo) {
  BehavioralSram mem(3, 3);
  RunOptions options;
  options.rotate_bits = 1;
  EXPECT_THROW(run_march(mem, test_11n(), options), Error);
  options.rotate_bits = 0;  // plain order is fine for any size
  EXPECT_NO_THROW(run_march(mem, test_11n(), options));
}

TEST(RotatedAddressing, FaultFreePassesUnderEveryRotation) {
  for (int rotation = 0; rotation < 5; ++rotation) {
    BehavioralSram mem(8, 4);  // 32 cells = 2^5
    RunOptions options;
    options.rotate_bits = rotation;
    EXPECT_TRUE(run_march(mem, test_11n(), options).passed());
  }
}

TEST(StaleBit, RedirectsOnlyOnBitTransitions) {
  BehavioralSram mem(8, 1);
  mem.add_fault(stale_bit(2, FailureEnvelope::always()));
  // Access row 3 (011) then row 7 (111): bit 2 changes, so the second
  // access resolves with the old bit-2 value -> row 3 again.
  mem.write(3, 0, true);
  mem.write(7, 0, false);  // actually lands on row 3 (clears it)
  // Re-read row 3 twice: the first read follows an access whose row (7)
  // differs in bit 2, so it redirects to row 7; the second read is stable.
  mem.read(3, 0);
  EXPECT_FALSE(mem.read(3, 0));  // row 3 was overwritten by the stray write
}

TEST(StaleBit, InactiveWithoutTransitions) {
  BehavioralSram mem(8, 1);
  mem.add_fault(stale_bit(2, FailureEnvelope::always()));
  // Stay within rows 0..3 (bit 2 never changes): behaviour is healthy.
  mem.write(1, 0, true);
  mem.write(2, 0, false);
  EXPECT_TRUE(mem.read(1, 0));
  EXPECT_FALSE(mem.read(2, 0));
}

TEST(StaleBit, DetectedByPlainMarch) {
  // Ascending order crosses each bit boundary with changed data around it,
  // so even the plain 11N sees a stale bit...
  BehavioralSram mem(8, 1);
  mem.add_fault(stale_bit(1, FailureEnvelope::always()));
  EXPECT_FALSE(run_march(mem, test_11n()).passed());
}

TEST(Movi, RunsOneRotationPerAddressBit) {
  BehavioralSram mem(8, 4);  // 32 cells -> 5 rotations
  const MoviResult result = run_movi(mem, mats_plus_plus());
  EXPECT_EQ(result.runs.size(), 5u);
  EXPECT_TRUE(result.passed());
  EXPECT_EQ(result.fail_count(), 0);
}

TEST(Movi, RequiresPowerOfTwo) {
  BehavioralSram mem(3, 3);
  EXPECT_THROW(run_movi(mem, mats_plus_plus()), Error);
}

TEST(Movi, DetectsStaleBitsOnEveryAddressBit) {
  // The MOVI property: whatever address bit is slow, some rotation makes
  // it the fastest-toggling bit and hammers its transitions.
  for (int bit = 0; bit < 3; ++bit) {
    BehavioralSram mem(8, 1);
    mem.add_fault(stale_bit(bit, FailureEnvelope::always()));
    const MoviResult result = run_movi(mem, mats_plus_plus());
    EXPECT_FALSE(result.passed()) << "stale bit " << bit;
  }
}

TEST(Movi, AtSpeedOnlyStaleBitGatedByEnvelope) {
  BehavioralSram mem(8, 1);
  mem.add_fault(stale_bit(1, FailureEnvelope::at_speed(16e-9)));
  mem.set_condition({1.8, 25e-9});
  EXPECT_TRUE(run_movi(mem, mats_plus_plus()).passed());
  mem.set_condition({1.8, 15e-9});
  EXPECT_FALSE(run_movi(mem, mats_plus_plus()).passed());
}

TEST(Movi, FailCountAggregatesAcrossRotations) {
  BehavioralSram mem(4, 4);
  InjectedFault f;
  f.type = FaultType::StuckAt0;
  f.row = 0;
  f.col = 0;
  f.envelope = FailureEnvelope::always();
  mem.add_fault(f);
  const MoviResult result = run_movi(mem, mats_plus_plus());
  EXPECT_FALSE(result.passed());
  EXPECT_GE(result.fail_count(), static_cast<long>(result.runs.size()));
}

}  // namespace
}  // namespace memstress::march
