#include "march/library.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace memstress::march {
namespace {

TEST(Library, ComplexitiesMatchTheLiterature) {
  EXPECT_EQ(mats_plus().complexity(), 5);
  EXPECT_EQ(mats_plus_plus().complexity(), 6);
  EXPECT_EQ(march_c_minus().complexity(), 10);
  EXPECT_EQ(march_a().complexity(), 15);
  EXPECT_EQ(march_b().complexity(), 17);
  EXPECT_EQ(march_ss().complexity(), 22);
  EXPECT_EQ(test_11n().complexity(), 11);
}

TEST(Library, ElevenNContainsThePaperBitmapElements) {
  // The paper's Chip-1 bitmap shows fails in {R0W1}, {R1W0R0} and {R0W1R1};
  // Chip-2 shows {R0W1} and {R0W1R1}. All must exist in the 11N test.
  const MarchTest t = test_11n();
  std::set<std::string> signatures;
  for (const auto& e : t.elements) signatures.insert(e.signature());
  EXPECT_TRUE(signatures.count("{R0W1}"));
  EXPECT_TRUE(signatures.count("{R1W0R0}"));
  EXPECT_TRUE(signatures.count("{R0W1R1}"));
}

TEST(Library, NamesAreSet) {
  for (const auto& t : all_tests()) EXPECT_FALSE(t.name.empty());
}

TEST(Library, AllTestsStartByInitializingMemory) {
  for (const auto& t : all_tests()) {
    ASSERT_FALSE(t.elements.empty()) << t.name;
    const auto& first = t.elements.front();
    ASSERT_FALSE(first.ops.empty()) << t.name;
    EXPECT_FALSE(first.ops.front().is_read) << t.name;
  }
}

TEST(Library, ReadsAlwaysMatchPrecedingState) {
  // Sanity of each definition: simulate a perfect memory symbolically and
  // confirm every read expects the value last written to that cell.
  for (const auto& t : all_tests()) {
    // Since all library elements apply the same ops to every address, a
    // single-cell symbolic execution is sufficient.
    bool value = false;
    bool initialized = false;
    for (const auto& e : t.elements) {
      for (const auto& op : e.ops) {
        if (op.is_read) {
          ASSERT_TRUE(initialized) << t.name << ": read before any write";
          EXPECT_EQ(op.value, value) << t.name << " expects a wrong value";
        } else {
          value = op.value;
          initialized = true;
        }
      }
    }
  }
}

TEST(Library, AllTestsReturnedOnce) {
  const auto tests = all_tests();
  EXPECT_EQ(tests.size(), 7u);
  std::set<std::string> names;
  for (const auto& t : tests) names.insert(t.name);
  EXPECT_EQ(names.size(), tests.size());
}

}  // namespace
}  // namespace memstress::march
