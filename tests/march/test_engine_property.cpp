// Property-style sweeps of the march engine: invariants that must hold for
// every library test, every matrix geometry, and every fault position.
#include <gtest/gtest.h>

#include "march/engine.hpp"
#include "march/library.hpp"

namespace memstress::march {
namespace {

using sram::BehavioralSram;
using sram::FailureEnvelope;
using sram::FaultType;
using sram::InjectedFault;

// --- every library test x every geometry: fault-free always passes --------

struct GeometryCase {
  int rows;
  int cols;
};

class FaultFreeSweep
    : public ::testing::TestWithParam<std::tuple<int, GeometryCase>> {};

TEST_P(FaultFreeSweep, FaultFreePasses) {
  const auto [test_index, geometry] = GetParam();
  const MarchTest test = all_tests()[static_cast<std::size_t>(test_index)];
  BehavioralSram mem(geometry.rows, geometry.cols);
  const FailLog log = run_march(mem, test);
  EXPECT_TRUE(log.passed()) << test.name;
}

std::string fault_free_case_name(
    const ::testing::TestParamInfo<std::tuple<int, GeometryCase>>& info) {
  const int t = std::get<0>(info.param);
  const GeometryCase g = std::get<1>(info.param);
  return "test" + std::to_string(t) + "_" + std::to_string(g.rows) + "x" +
         std::to_string(g.cols);
}

INSTANTIATE_TEST_SUITE_P(
    AllTestsAllGeometries, FaultFreeSweep,
    ::testing::Combine(::testing::Range(0, 7),
                       ::testing::Values(GeometryCase{1, 1}, GeometryCase{2, 2},
                                         GeometryCase{5, 3}, GeometryCase{8, 8},
                                         GeometryCase{16, 4})),
    fault_free_case_name);

// --- every library test detects a stuck-at fault at any position ----------

class StuckAtSweep
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(StuckAtSweep, DetectedEverywhere) {
  const auto [test_index, position, stuck_value] = GetParam();
  const MarchTest test = all_tests()[static_cast<std::size_t>(test_index)];
  BehavioralSram mem(4, 4);
  InjectedFault f;
  f.type = stuck_value ? FaultType::StuckAt1 : FaultType::StuckAt0;
  f.row = position / 4;
  f.col = position % 4;
  f.envelope = FailureEnvelope::always();
  mem.add_fault(f);
  const FailLog log = run_march(mem, test);
  ASSERT_FALSE(log.passed()) << test.name;
  // And the bitmap localizes it exactly.
  const auto cells = log.failing_cells();
  ASSERT_EQ(cells.size(), 1u) << test.name;
  EXPECT_EQ(*cells.begin(), std::make_pair(f.row, f.col)) << test.name;
}

INSTANTIATE_TEST_SUITE_P(AllTestsAllPositions, StuckAtSweep,
                         ::testing::Combine(::testing::Range(0, 7),
                                            ::testing::Values(0, 5, 10, 15),
                                            ::testing::Bool()));

// --- transition faults: detected by every test that rereads after writes --

class TransitionSweep : public ::testing::TestWithParam<int> {};

TEST_P(TransitionSweep, DetectedPerMarchTheory) {
  const MarchTest test = all_tests()[static_cast<std::size_t>(GetParam())];
  for (const auto type : {FaultType::TransitionUp, FaultType::TransitionDown}) {
    // March theory: MATS+ (5N) does not cover falling-transition faults —
    // its final w0 is never re-read. That gap is precisely why MATS++ adds
    // the trailing r0. Every other library test covers both directions.
    const bool covered =
        !(test.name == "MATS+" && type == FaultType::TransitionDown);
    BehavioralSram mem(3, 3);
    InjectedFault f;
    f.type = type;
    f.row = 1;
    f.col = 1;
    f.envelope = FailureEnvelope::always();
    mem.add_fault(f);
    EXPECT_EQ(run_march(mem, test).passed(), !covered)
        << test.name << " vs " << fault_type_name(type);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTests, TransitionSweep, ::testing::Range(0, 7));

// --- coupling faults: March C- and stronger always detect them ------------

class CouplingSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CouplingSweep, InversionCouplingDetectedByStrongTests) {
  const auto [aggressor, victim] = GetParam();
  if (aggressor == victim) return;
  for (const auto& test : {march_c_minus(), march_a(), march_b(), march_ss(),
                           test_11n()}) {
    BehavioralSram mem(3, 3);
    InjectedFault f;
    f.type = FaultType::CouplingInversion;
    f.row = aggressor / 3;
    f.col = aggressor % 3;
    f.aux_row = victim / 3;
    f.aux_col = victim % 3;
    f.envelope = FailureEnvelope::always();
    mem.add_fault(f);
    EXPECT_FALSE(run_march(mem, test).passed())
        << test.name << " missed CFin " << aggressor << "->" << victim;
  }
}

INSTANTIATE_TEST_SUITE_P(AggressorVictimPairs, CouplingSweep,
                         ::testing::Combine(::testing::Values(0, 4, 8),
                                            ::testing::Values(0, 2, 6)));

// --- the march engine runs identically regardless of address map ----------

class AddressMapSweep : public ::testing::TestWithParam<int> {};

TEST_P(AddressMapSweep, StuckAtDetectedUnderBothMaps) {
  const MarchTest test = all_tests()[static_cast<std::size_t>(GetParam())];
  for (const auto map : {AddressMap::RowMajor, AddressMap::ColumnMajor}) {
    BehavioralSram mem(4, 6);
    InjectedFault f;
    f.type = FaultType::StuckAt0;
    f.row = 2;
    f.col = 5;
    f.envelope = FailureEnvelope::always();
    mem.add_fault(f);
    RunOptions options;
    options.address_map = map;
    EXPECT_FALSE(run_march(mem, test, options).passed()) << test.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTests, AddressMapSweep, ::testing::Range(0, 7));

}  // namespace
}  // namespace memstress::march
