#include <gtest/gtest.h>

#include "march/engine.hpp"
#include "march/library.hpp"
#include "util/error.hpp"

namespace memstress::march {
namespace {

using sram::BehavioralSram;
using sram::FailureEnvelope;
using sram::FaultType;
using sram::InjectedFault;

InjectedFault retention_fault(int row, int col, bool decays_to,
                              double retention_s,
                              FailureEnvelope envelope = FailureEnvelope::always()) {
  InjectedFault f;
  f.type = FaultType::DataRetention;
  f.row = row;
  f.col = col;
  f.value = decays_to;
  f.retention_s = retention_s;
  f.envelope = envelope;
  return f;
}

TEST(Retention, FaultFreeMemoryRetains) {
  BehavioralSram mem(8, 8);
  EXPECT_TRUE(run_retention(mem, 0.1).passed());
}

TEST(Retention, DecayingCellCaughtByPause) {
  BehavioralSram mem(8, 8);
  mem.add_fault(retention_fault(3, 4, false, 1e-3));  // decays to 0 after 1 ms
  const FailLog log = run_retention(mem, 10e-3);
  ASSERT_FALSE(log.passed());
  const auto cells = log.failing_cells();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(*cells.begin(), std::make_pair(3, 4));
  // Decay-to-0 shows up in the background-of-1s pass.
  for (const auto& f : log.fails()) {
    EXPECT_TRUE(f.expected);
    EXPECT_FALSE(f.observed);
  }
}

TEST(Retention, ShortPauseEscapes) {
  BehavioralSram mem(8, 8);
  mem.add_fault(retention_fault(3, 4, false, 1e-3));
  EXPECT_TRUE(run_retention(mem, 0.1e-3).passed());  // pause < retention
}

TEST(Retention, BothDecayPolaritiesCovered) {
  for (const bool decays_to : {false, true}) {
    BehavioralSram mem(4, 4);
    mem.add_fault(retention_fault(1, 2, decays_to, 1e-3));
    const FailLog log = run_retention(mem, 5e-3);
    ASSERT_FALSE(log.passed()) << "decays_to=" << decays_to;
    for (const auto& f : log.fails()) EXPECT_EQ(f.expected, !decays_to);
  }
}

TEST(Retention, MarchTestsMissRetentionFaults) {
  // The whole point: every march corner passes a retention-faulty device
  // because the cell is rewritten before it ever decays.
  BehavioralSram mem(8, 8);
  mem.add_fault(retention_fault(3, 4, false, 1e-3));
  for (const auto& test : all_tests())
    EXPECT_TRUE(run_march(mem, test).passed()) << test.name;
}

TEST(Retention, EnvelopeGatesDecay) {
  // A marginal retention defect that only decays at high temperature /
  // voltage corners is modelled through the envelope like everything else.
  BehavioralSram mem(4, 4);
  mem.add_fault(retention_fault(0, 0, false, 1e-3,
                                FailureEnvelope::high_voltage(1.9)));
  mem.set_condition({1.8, 25e-9});
  EXPECT_TRUE(run_retention(mem, 10e-3).passed());
  mem.set_condition({1.95, 25e-9});
  EXPECT_FALSE(run_retention(mem, 10e-3).passed());
}

TEST(Retention, PauseValidatesInput) {
  BehavioralSram mem(2, 2);
  EXPECT_THROW(mem.pause(-1.0), Error);
  EXPECT_THROW(run_retention(mem, -1.0), Error);
}

}  // namespace
}  // namespace memstress::march
