#include "march/generator.hpp"

#include <gtest/gtest.h>

#include "march/library.hpp"
#include "util/error.hpp"

namespace memstress::march {
namespace {

using sram::FailureEnvelope;
using sram::FaultType;
using sram::InjectedFault;

InjectedFault fault(FaultType type, int row, int col, int aux_row = -1,
                    int aux_col = -1, bool value = false) {
  InjectedFault f;
  f.type = type;
  f.row = row;
  f.col = col;
  f.aux_row = aux_row;
  f.aux_col = aux_col;
  f.value = value;
  f.envelope = FailureEnvelope::always();
  return f;
}

std::vector<InjectedFault> classic_fault_panel() {
  return {
      fault(FaultType::StuckAt0, 1, 1),
      fault(FaultType::StuckAt1, 2, 2),
      fault(FaultType::TransitionUp, 0, 3),
      fault(FaultType::TransitionDown, 3, 0),
      fault(FaultType::CouplingInversion, 1, 2, 2, 3),
      fault(FaultType::DecoderWrongRow, 1, -1, 2),
  };
}

TEST(Generator, CoversTheClassicPanelCompletely) {
  const GeneratedMarch result = generate_march(classic_fault_panel());
  EXPECT_TRUE(result.complete())
      << result.covered << "/" << result.total << " with "
      << result.test.to_string();
}

TEST(Generator, GeneratedTestIsMarchConsistent) {
  // The generated test must pass a fault-free memory of any size.
  const GeneratedMarch result = generate_march(classic_fault_panel());
  for (const auto [rows, cols] : {std::pair{4, 4}, {8, 8}, {3, 5}}) {
    sram::BehavioralSram memory(rows, cols);
    EXPECT_TRUE(run_march(memory, result.test).passed())
        << result.test.to_string();
  }
}

TEST(Generator, ShorterThanMarchSsOnSimplePanels) {
  // For stuck-at + transition faults the generator should land well below
  // the 22N of March SS.
  const std::vector<InjectedFault> simple{
      fault(FaultType::StuckAt0, 1, 1),
      fault(FaultType::StuckAt1, 2, 2),
      fault(FaultType::TransitionUp, 0, 3),
      fault(FaultType::TransitionDown, 3, 0),
  };
  const GeneratedMarch result = generate_march(simple);
  EXPECT_TRUE(result.complete());
  EXPECT_LT(result.test.complexity(), march_ss().complexity());
  EXPECT_LE(result.test.complexity(), 8);
}

TEST(Generator, ReadDestructiveNeedsBackToBackReads) {
  const std::vector<InjectedFault> panel{
      fault(FaultType::ReadDestructive, 2, 2)};
  const GeneratedMarch result = generate_march(panel);
  EXPECT_TRUE(result.complete()) << result.test.to_string();
  // Some element must contain consecutive reads (the (rs, rs) template).
  bool has_double_read = false;
  for (const auto& element : result.test.elements) {
    for (std::size_t i = 1; i < element.ops.size(); ++i)
      if (element.ops[i].is_read && element.ops[i - 1].is_read)
        has_double_read = true;
  }
  EXPECT_TRUE(has_double_read) << result.test.to_string();
}

TEST(Generator, PerFaultFlagsMatchCoverage) {
  const auto panel = classic_fault_panel();
  const GeneratedMarch result = generate_march(panel);
  ASSERT_EQ(result.detected.size(), panel.size());
  int flagged = 0;
  for (const bool hit : result.detected) flagged += hit;
  EXPECT_EQ(flagged, result.covered);
}

TEST(Generator, RespectsStressCondition) {
  // A VLV-only fault evaluated at nominal conditions is uncoverable; the
  // generator must report incomplete coverage rather than lie.
  InjectedFault vlv_only = fault(FaultType::StuckAt1, 1, 1);
  vlv_only.envelope = FailureEnvelope::low_voltage(1.2);
  GeneratorOptions nominal;
  nominal.condition = {1.8, 25e-9};
  const GeneratedMarch at_nominal = generate_march({vlv_only}, nominal);
  EXPECT_FALSE(at_nominal.complete());

  GeneratorOptions vlv;
  vlv.condition = {1.0, 100e-9};
  const GeneratedMarch at_vlv = generate_march({vlv_only}, vlv);
  EXPECT_TRUE(at_vlv.complete());
}

TEST(Generator, MinimizeDropsRedundantElements) {
  // March B contains elements redundant for a pure stuck-at panel.
  const std::vector<InjectedFault> panel{
      fault(FaultType::StuckAt0, 0, 0),
      fault(FaultType::StuckAt1, 3, 3),
  };
  const MarchTest minimized = minimize_march(march_b(), panel);
  EXPECT_LT(minimized.complexity(), march_b().complexity());
  EXPECT_EQ(coverage_of(minimized, panel), 2);
  // Minimized test is still valid on a clean memory.
  sram::BehavioralSram memory(4, 4);
  EXPECT_TRUE(run_march(memory, minimized).passed());
}

TEST(Generator, CoverageOfAgreesWithLibraryKnowledge) {
  // MATS+ misses TransitionDown (march theory): coverage_of must see that.
  const std::vector<InjectedFault> panel{fault(FaultType::TransitionDown, 1, 1)};
  EXPECT_EQ(coverage_of(mats_plus(), panel), 0);
  EXPECT_EQ(coverage_of(mats_plus_plus(), panel), 1);
}

TEST(Generator, ValidatesInput) {
  EXPECT_THROW(generate_march({}), Error);
  GeneratorOptions bad;
  bad.max_elements = 0;
  EXPECT_THROW(generate_march(classic_fault_panel(), bad), Error);
}

TEST(Generator, DeterministicOutput) {
  const GeneratedMarch a = generate_march(classic_fault_panel());
  const GeneratedMarch b = generate_march(classic_fault_panel());
  EXPECT_EQ(a.test, b.test);
}

}  // namespace
}  // namespace memstress::march
