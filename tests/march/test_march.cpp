#include "march/march.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace memstress::march {
namespace {

TEST(MarchOp, Factories) {
  EXPECT_TRUE(MarchOp::r0().is_read);
  EXPECT_FALSE(MarchOp::r0().value);
  EXPECT_TRUE(MarchOp::r1().value);
  EXPECT_FALSE(MarchOp::w0().is_read);
  EXPECT_TRUE(MarchOp::w1().value);
}

TEST(MarchOp, ToString) {
  EXPECT_EQ(MarchOp::r0().to_string(), "r0");
  EXPECT_EQ(MarchOp::r1().to_string(), "r1");
  EXPECT_EQ(MarchOp::w0().to_string(), "w0");
  EXPECT_EQ(MarchOp::w1().to_string(), "w1");
}

TEST(MarchElement, ToStringAndSignature) {
  MarchElement e;
  e.order = AddressOrder::Ascending;
  e.ops = {MarchOp::r0(), MarchOp::w1()};
  EXPECT_EQ(e.to_string(), "^(r0,w1)");
  EXPECT_EQ(e.signature(), "{R0W1}");

  e.order = AddressOrder::Descending;
  e.ops = {MarchOp::r1(), MarchOp::w0(), MarchOp::r0()};
  EXPECT_EQ(e.to_string(), "v(r1,w0,r0)");
  EXPECT_EQ(e.signature(), "{R1W0R0}");
}

TEST(MarchTest, ComplexityCountsAllOps) {
  const MarchTest t = parse_march("x", "{*(w0); ^(r0,w1); v(r1,w0,r0)}");
  EXPECT_EQ(t.complexity(), 6);
}

TEST(Parse, RoundTripsNotation) {
  const std::string notation = "{*(w0); ^(r0,w1); v(r1,w0,r0)}";
  const MarchTest t = parse_march("MATS++", notation);
  EXPECT_EQ(t.to_string(), notation);
  EXPECT_EQ(t.name, "MATS++");
  const MarchTest again = parse_march("MATS++", t.to_string());
  EXPECT_EQ(t, again);
}

TEST(Parse, OrdersRecognized) {
  const MarchTest t = parse_march("x", "{^(r0); v(w1); *(r1)}");
  EXPECT_EQ(t.elements[0].order, AddressOrder::Ascending);
  EXPECT_EQ(t.elements[1].order, AddressOrder::Descending);
  EXPECT_EQ(t.elements[2].order, AddressOrder::Either);
}

TEST(Parse, ToleratesWhitespace) {
  const MarchTest t = parse_march("x", "{ ^( r0 , w1 ) ;  v( r1 ) }");
  EXPECT_EQ(t.complexity(), 3);
}

TEST(Parse, RejectsMalformedInput) {
  EXPECT_THROW(parse_march("x", ""), Error);
  EXPECT_THROW(parse_march("x", "{}"), Error);
  EXPECT_THROW(parse_march("x", "{^()}"), Error);
  EXPECT_THROW(parse_march("x", "{^(r2)}"), Error);
  EXPECT_THROW(parse_march("x", "{^(x0)}"), Error);
  EXPECT_THROW(parse_march("x", "{^(r0)"), Error);
  EXPECT_THROW(parse_march("x", "{^(r0)} trailing"), Error);
  EXPECT_THROW(parse_march("x", "{(r0)}"), Error);
}

TEST(Parse, SingleElementSingleOp) {
  const MarchTest t = parse_march("scan", "{*(r0)}");
  EXPECT_EQ(t.elements.size(), 1u);
  EXPECT_EQ(t.complexity(), 1);
}

}  // namespace
}  // namespace memstress::march
