#include "layout/sram_layout.hpp"

#include <gtest/gtest.h>

#include <set>

#include "layout/netnames.hpp"
#include "util/error.hpp"

namespace memstress::layout {
namespace {

std::set<std::string> nets_of(const LayoutModel& model) {
  std::set<std::string> nets;
  for (const auto& s : model.shapes) nets.insert(s.net);
  return nets;
}

TEST(SramLayout, RejectsBadDimensions) {
  EXPECT_THROW(generate_sram_layout(0, 4), Error);
  EXPECT_THROW(generate_sram_layout(4, 0), Error);
}

TEST(SramLayout, ContainsAllExpectedNets) {
  const LayoutModel model = generate_sram_layout(4, 2);
  const auto nets = nets_of(model);
  EXPECT_TRUE(nets.count(net_vdd()));
  EXPECT_TRUE(nets.count(net_gnd()));
  for (int r = 0; r < 4; ++r) EXPECT_TRUE(nets.count(net_wl(r))) << r;
  for (int c = 0; c < 2; ++c) {
    EXPECT_TRUE(nets.count(net_bl(c)));
    EXPECT_TRUE(nets.count(net_blb(c)));
    EXPECT_TRUE(nets.count(net_q(c)));
  }
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 2; ++c) {
      EXPECT_TRUE(nets.count(net_cell_t(r, c)));
      EXPECT_TRUE(nets.count(net_cell_f(r, c)));
    }
  // 4 rows -> 2 address bits.
  EXPECT_TRUE(nets.count(net_addr_in(0)));
  EXPECT_TRUE(nets.count(net_addr_in(1)));
  EXPECT_FALSE(nets.count(net_addr_in(2)));
}

TEST(SramLayout, JointTagsPresent) {
  const LayoutModel model = generate_sram_layout(2, 1);
  std::set<std::string> joints;
  for (const auto& s : model.shapes)
    if (!s.joint.empty()) joints.insert(s.joint);
  EXPECT_TRUE(joints.count(joint_wordline(0)));
  EXPECT_TRUE(joints.count(joint_wordline(1)));
  EXPECT_TRUE(joints.count(joint_bitline(0)));
  EXPECT_TRUE(joints.count(joint_sense(0)));
  EXPECT_TRUE(joints.count(joint_addr_input(0)));
  EXPECT_TRUE(joints.count(joint_cell_access(0, 0)));
  EXPECT_TRUE(joints.count(joint_cell_access(1, 0)));
}

TEST(SramLayout, ShapeCountScalesWithCells) {
  const LayoutModel small = generate_sram_layout(2, 2);
  const LayoutModel large = generate_sram_layout(4, 4);
  EXPECT_GT(large.shapes.size(), 2 * small.shapes.size());
  EXPECT_EQ(small.rows, 2);
  EXPECT_EQ(large.cols, 4);
}

TEST(SramLayout, MirroredRowWordlinesFaceEachOther) {
  const LayoutModel model = generate_sram_layout(2, 1);
  const Shape* wl0 = nullptr;
  const Shape* wl1 = nullptr;
  for (const auto& s : model.shapes) {
    if (s.layer != Layer::Poly) continue;
    if (s.net == net_wl(0)) wl0 = &s;
    if (s.net == net_wl(1)) wl1 = &s;
  }
  ASSERT_NE(wl0, nullptr);
  ASSERT_NE(wl1, nullptr);
  const ParallelRun run = parallel_run(*wl0, *wl1);
  EXPECT_TRUE(run.facing);
  EXPECT_LT(run.spacing, 0.5);  // close enough for bridge extraction
}

TEST(SramLayout, BitlinesRunFullArrayHeight) {
  const FloorplanRules rules;
  const LayoutModel model = generate_sram_layout(4, 1);
  for (const auto& s : model.shapes) {
    if (s.layer == Layer::Metal2 && s.net == net_bl(0)) {
      EXPECT_DOUBLE_EQ(s.y0, 0.0);
      EXPECT_DOUBLE_EQ(s.y1, 4 * rules.cell_pitch_y);
    }
  }
}

TEST(SramLayout, AllShapesHaveNets) {
  const LayoutModel model = generate_sram_layout(4, 4);
  for (const auto& s : model.shapes) EXPECT_FALSE(s.net.empty());
}

TEST(SramLayout, AllShapesWellFormed) {
  const LayoutModel model = generate_sram_layout(4, 4);
  for (const auto& s : model.shapes) {
    EXPECT_LT(s.x0, s.x1);
    EXPECT_LT(s.y0, s.y1);
  }
}

TEST(SramLayout, ConductorAreaGrowsWithArray) {
  const double a22 = generate_sram_layout(2, 2).conductor_area();
  const double a44 = generate_sram_layout(4, 4).conductor_area();
  EXPECT_GT(a44, 2.0 * a22);
}

}  // namespace
}  // namespace memstress::layout
