#include "layout/critical_area.hpp"

#include <gtest/gtest.h>

#include <map>

#include "layout/netnames.hpp"
#include "layout/sram_layout.hpp"

namespace memstress::layout {
namespace {

LayoutModel two_wires(double spacing, double overlap) {
  LayoutModel model;
  model.rows = 1;
  model.cols = 1;
  model.shapes.push_back({Layer::Metal1, 0, 0, overlap, 0.2, "a", {}});
  model.shapes.push_back({Layer::Metal1, 0, 0.2 + spacing, overlap,
                          0.4 + spacing, "b", {}});
  return model;
}

TEST(Classify, BridgeCategoriesFromNames) {
  EXPECT_EQ(classify_bridge("cell0_0_t", "cell0_0_f"), BridgeCategory::CellTrueFalse);
  EXPECT_EQ(classify_bridge("cell1_2_t", "bl2"), BridgeCategory::CellNodeBitline);
  EXPECT_EQ(classify_bridge("vdd", "cell0_0_t"), BridgeCategory::CellNodeVdd);
  EXPECT_EQ(classify_bridge("cell0_0_f", "0"), BridgeCategory::CellNodeGnd);
  EXPECT_EQ(classify_bridge("blb0", "bl1"), BridgeCategory::BitlineBitline);
  EXPECT_EQ(classify_bridge("wl0", "wl1"), BridgeCategory::WordlineWordline);
  EXPECT_EQ(classify_bridge("a0_in", "a1_in"), BridgeCategory::AddressAddress);
  EXPECT_EQ(classify_bridge("a0_in", "vdd"), BridgeCategory::AddressVdd);
  EXPECT_EQ(classify_bridge("foo", "bar"), BridgeCategory::Other);
}

TEST(Classify, OpenCategoriesFromJointNames) {
  EXPECT_EQ(classify_open("cell0_0.acc"), OpenCategory::CellAccess);
  EXPECT_EQ(classify_open("wl3.stitch"), OpenCategory::Wordline);
  EXPECT_EQ(classify_open("addr1.in"), OpenCategory::AddressInput);
  EXPECT_EQ(classify_open("bl2.stitch"), OpenCategory::Bitline);
  EXPECT_EQ(classify_open("sense0.out"), OpenCategory::SenseOut);
  EXPECT_EQ(classify_open("mystery"), OpenCategory::Other);
}

TEST(ExtractBridges, WeightInverselyProportionalToSpacing) {
  ExtractionRules rules;
  rules.gate_oxide_weight_per_cell = 0.0;
  const auto near = extract_bridges(two_wires(0.2, 1.0), rules);
  const auto far = extract_bridges(two_wires(0.4, 1.0), rules);
  ASSERT_EQ(near.size(), 1u);
  ASSERT_EQ(far.size(), 1u);
  EXPECT_NEAR(near[0].weight / far[0].weight, 2.0, 1e-9);
}

TEST(ExtractBridges, WeightProportionalToRunLength) {
  ExtractionRules rules;
  rules.gate_oxide_weight_per_cell = 0.0;
  const auto short_run = extract_bridges(two_wires(0.2, 1.0), rules);
  const auto long_run = extract_bridges(two_wires(0.2, 3.0), rules);
  EXPECT_NEAR(long_run[0].weight / short_run[0].weight, 3.0, 1e-9);
}

TEST(ExtractBridges, IgnoresFarApartWires) {
  ExtractionRules rules;
  rules.gate_oxide_weight_per_cell = 0.0;
  const auto sites = extract_bridges(two_wires(0.6, 1.0), rules);
  EXPECT_TRUE(sites.empty());
}

TEST(ExtractBridges, IgnoresSameNetPairs) {
  LayoutModel model = two_wires(0.2, 1.0);
  model.shapes[1].net = "a";
  ExtractionRules rules;
  rules.gate_oxide_weight_per_cell = 0.0;
  EXPECT_TRUE(extract_bridges(model, rules).empty());
}

TEST(ExtractBridges, IgnoresCrossLayerPairs) {
  LayoutModel model = two_wires(0.2, 1.0);
  model.shapes[1].layer = Layer::Poly;
  ExtractionRules rules;
  rules.gate_oxide_weight_per_cell = 0.0;
  EXPECT_TRUE(extract_bridges(model, rules).empty());
}

TEST(ExtractBridges, AggregatesMultipleRunsPerNetPair) {
  LayoutModel model = two_wires(0.2, 1.0);
  // A second disjoint facing run of the same net pair.
  model.shapes.push_back({Layer::Metal1, 5, 0, 6, 0.2, "a", {}});
  model.shapes.push_back({Layer::Metal1, 5, 0.4, 6, 0.6, "b", {}});
  ExtractionRules rules;
  rules.gate_oxide_weight_per_cell = 0.0;
  const auto sites = extract_bridges(model, rules);
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_GT(sites[0].run_length, 1.5);
}

TEST(ExtractBridges, SramLayoutYieldsExpectedCategories) {
  const LayoutModel model = generate_sram_layout(4, 2);
  const auto sites = extract_bridges(model);
  std::map<BridgeCategory, int> count;
  for (const auto& site : sites) ++count[site.category];
  EXPECT_GT(count[BridgeCategory::CellTrueFalse], 0);
  EXPECT_GT(count[BridgeCategory::CellNodeBitline], 0);
  EXPECT_GT(count[BridgeCategory::CellNodeVdd], 0);
  EXPECT_GT(count[BridgeCategory::CellNodeGnd], 0);
  EXPECT_GT(count[BridgeCategory::BitlineBitline], 0);
  EXPECT_GT(count[BridgeCategory::WordlineWordline], 0);
  EXPECT_GT(count[BridgeCategory::AddressAddress], 0);
  EXPECT_GT(count[BridgeCategory::AddressVdd], 0);
  EXPECT_GT(count[BridgeCategory::CellGateOxide], 0);
}

TEST(ExtractBridges, GateOxideSitesOnePerCell) {
  const LayoutModel model = generate_sram_layout(4, 2);
  ExtractionRules rules;
  const auto sites = extract_bridges(model, rules);
  int gox = 0;
  for (const auto& site : sites)
    if (site.category == BridgeCategory::CellGateOxide) ++gox;
  EXPECT_EQ(gox, 8);
}

TEST(ExtractBridges, GateOxideDisabled) {
  ExtractionRules rules;
  rules.gate_oxide_weight_per_cell = 0.0;
  const auto sites = extract_bridges(generate_sram_layout(2, 1), rules);
  for (const auto& site : sites)
    EXPECT_NE(site.category, BridgeCategory::CellGateOxide);
}

TEST(ExtractOpens, EveryJointBecomesASite) {
  const LayoutModel model = generate_sram_layout(2, 1);
  const auto opens = extract_opens(model);
  std::map<OpenCategory, int> count;
  for (const auto& site : opens) ++count[site.category];
  EXPECT_EQ(count[OpenCategory::CellAccess], 2);   // 2 cells
  EXPECT_EQ(count[OpenCategory::Wordline], 2);     // 2 rows
  EXPECT_EQ(count[OpenCategory::AddressInput], 1); // 1 address bit
  EXPECT_EQ(count[OpenCategory::Bitline], 1);
  EXPECT_EQ(count[OpenCategory::SenseOut], 1);
}

TEST(ExtractOpens, ViaBoostApplies) {
  LayoutModel model;
  model.rows = model.cols = 1;
  // Same dimensions: a via open site and a wire open site.
  model.shapes.push_back({Layer::Via, 0, 0, 0.22, 0.22, "n1", "addr0.in"});
  model.shapes.push_back({Layer::Metal1, 1, 0, 1.22, 0.22, "n2", "wl0.stitch"});
  ExtractionRules rules;
  const auto opens = extract_opens(model, rules);
  ASSERT_EQ(opens.size(), 2u);
  const double via_w = opens[0].weight;
  const double wire_w = opens[1].weight;
  EXPECT_NEAR(via_w / wire_w, rules.via_open_boost, 1e-9);
}

TEST(ExtractBridges, MoreCellsMoreWeight) {
  ExtractionRules rules;
  const auto small = extract_bridges(generate_sram_layout(2, 2), rules);
  const auto large = extract_bridges(generate_sram_layout(4, 4), rules);
  auto total = [](const std::vector<BridgeSite>& sites) {
    double sum = 0.0;
    for (const auto& s : sites) sum += s.weight;
    return sum;
  };
  EXPECT_GT(total(large), 2.0 * total(small));
}

}  // namespace
}  // namespace memstress::layout
