#include "layout/geometry.hpp"

#include <gtest/gtest.h>

namespace memstress::layout {
namespace {

Shape rect(Layer layer, double x0, double y0, double x1, double y1,
           const std::string& net) {
  return Shape{layer, x0, y0, x1, y1, net, {}};
}

TEST(Shape, WidthLengthArea) {
  const Shape s = rect(Layer::Metal1, 0, 0, 4, 1, "n");
  EXPECT_DOUBLE_EQ(s.width(), 1.0);
  EXPECT_DOUBLE_EQ(s.length(), 4.0);
  EXPECT_DOUBLE_EQ(s.area(), 4.0);
}

TEST(ParallelRun, VerticalGapHorizontalOverlap) {
  const Shape a = rect(Layer::Metal1, 0, 0, 4, 1, "a");
  const Shape b = rect(Layer::Metal1, 1, 1.5, 5, 2.5, "b");
  const ParallelRun run = parallel_run(a, b);
  EXPECT_TRUE(run.facing);
  EXPECT_DOUBLE_EQ(run.length, 3.0);   // overlap [1, 4]
  EXPECT_DOUBLE_EQ(run.spacing, 0.5);  // 1.5 - 1.0
}

TEST(ParallelRun, HorizontalGapVerticalOverlap) {
  const Shape a = rect(Layer::Metal2, 0, 0, 1, 10, "a");
  const Shape b = rect(Layer::Metal2, 1.2, 2, 2.2, 8, "b");
  const ParallelRun run = parallel_run(a, b);
  EXPECT_TRUE(run.facing);
  EXPECT_DOUBLE_EQ(run.length, 6.0);
  EXPECT_NEAR(run.spacing, 0.2, 1e-12);
}

TEST(ParallelRun, SymmetricInArguments) {
  const Shape a = rect(Layer::Metal1, 0, 0, 4, 1, "a");
  const Shape b = rect(Layer::Metal1, 1, 1.5, 5, 2.5, "b");
  const ParallelRun ab = parallel_run(a, b);
  const ParallelRun ba = parallel_run(b, a);
  EXPECT_DOUBLE_EQ(ab.length, ba.length);
  EXPECT_DOUBLE_EQ(ab.spacing, ba.spacing);
}

TEST(ParallelRun, OverlappingRectanglesDoNotFace) {
  const Shape a = rect(Layer::Metal1, 0, 0, 4, 2, "a");
  const Shape b = rect(Layer::Metal1, 1, 1, 3, 3, "b");
  EXPECT_FALSE(parallel_run(a, b).facing);
}

TEST(ParallelRun, AbuttingRectanglesDoNotFace) {
  const Shape a = rect(Layer::Metal1, 0, 0, 4, 1, "a");
  const Shape b = rect(Layer::Metal1, 0, 1, 4, 2, "b");  // share an edge
  EXPECT_FALSE(parallel_run(a, b).facing);
}

TEST(ParallelRun, DiagonalRectanglesDoNotFace) {
  const Shape a = rect(Layer::Metal1, 0, 0, 1, 1, "a");
  const Shape b = rect(Layer::Metal1, 2, 2, 3, 3, "b");
  EXPECT_FALSE(parallel_run(a, b).facing);
}

TEST(LayoutModel, ConductorAreaSumsShapes) {
  LayoutModel model;
  model.shapes.push_back(rect(Layer::Metal1, 0, 0, 2, 1, "a"));
  model.shapes.push_back(rect(Layer::Poly, 0, 0, 3, 1, "b"));
  EXPECT_DOUBLE_EQ(model.conductor_area(), 5.0);
}

TEST(LayerName, AllLayersNamed) {
  EXPECT_STREQ(layer_name(Layer::Poly), "poly");
  EXPECT_STREQ(layer_name(Layer::Metal1), "metal1");
  EXPECT_STREQ(layer_name(Layer::Metal2), "metal2");
  EXPECT_STREQ(layer_name(Layer::Via), "via");
  EXPECT_STREQ(layer_name(Layer::Contact), "contact");
  EXPECT_STREQ(layer_name(Layer::Diffusion), "diffusion");
}

}  // namespace
}  // namespace memstress::layout
