// Coverage-guided protocol fuzzer for the memstressd serving path.
//
// Flow: replay every regression artifact first (all must come back green —
// once a bug, always a test), then run a fixed-seed mutation loop over a
// corpus seeded with one request of every type. Inputs that light new
// coverage slots join the corpus; inputs that break the serving oracle are
// minimized and written to tests/server/corpus/regressions/, where the
// tier-1 ProtocolCorpus test replays them forever after.
//
// Usage: fuzz_protocol [--iterations N] [--seed S] [--hang-ms MS]
//                      [--artifacts DIR] [--replay-only]
//
// The last stdout line is machine-readable:
//   FUZZ_JSON {"bench":"fuzz_protocol", ...}
// Exit code 0 = replay green and no new findings.
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "tests/fuzz/fuzz_engine.hpp"
#include "tests/server/server_test_util.hpp"

using namespace memstress;
namespace fs = std::filesystem;

namespace {

// The input being executed right now, exported for the crash handler: if
// the process dies on a signal, the artifact still lands on disk.
std::string g_current_input;
char g_signal_artifact_path[512] = {0};

void write_signal_artifact(int signo) {
  if (g_signal_artifact_path[0] == '\0') return;
  const int fd = ::open(g_signal_artifact_path,
                        O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    (void)!::write(fd, g_current_input.data(), g_current_input.size());
    (void)!::write(fd, "\n", 1);
    ::close(fd);
  }
  std::signal(signo, SIG_DFL);
  std::raise(signo);
}

std::string read_file_frame(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const std::size_t newline = data.find('\n');
  if (newline != std::string::npos) data.resize(newline);
  return data;
}

struct Findings {
  long crash = 0;
  long hang = 0;
  long badresp = 0;
  long total() const { return crash + hang + badresp; }
  void count(fuzz::Verdict verdict) {
    if (verdict == fuzz::Verdict::Crash) ++crash;
    if (verdict == fuzz::Verdict::Hang) ++hang;
    if (verdict == fuzz::Verdict::BadResponse) ++badresp;
  }
};

}  // namespace

int main(int argc, char** argv) {
  long iterations = 10000;
  std::uint64_t seed = 1;
  int hang_ms = 2000;
  bool replay_only = false;
  fs::path artifacts =
      fs::path(MEMSTRESS_SOURCE_DIR) / "tests" / "server" / "corpus" /
      "regressions";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--iterations") == 0 && i + 1 < argc) {
      iterations = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--hang-ms") == 0 && i + 1 < argc) {
      hang_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--artifacts") == 0 && i + 1 < argc) {
      artifacts = argv[++i];
    } else if (std::strcmp(argv[i], "--replay-only") == 0) {
      replay_only = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  fs::create_directories(artifacts);
  std::snprintf(g_signal_artifact_path, sizeof g_signal_artifact_path,
                "%s/crash-signal-%d.txt", artifacts.c_str(),
                static_cast<int>(::getpid()));
  std::signal(SIGSEGV, &write_signal_artifact);
  std::signal(SIGABRT, &write_signal_artifact);
  std::signal(SIGBUS, &write_signal_artifact);

  const auto service = server::make_test_service();
  fuzz::CoverageMap map;
  Findings findings;
  std::vector<std::string> corpus = fuzz::builtin_seeds();

  // Phase 1: regression replay. Every artifact must produce a structured
  // response (verdict ok) — these are all fixed bugs. Replay also primes
  // the coverage map so the mutation loop only chases genuinely new edges.
  long replayed = 0;
  long replay_failures = 0;
  std::vector<fs::path> artifact_files;
  for (const auto& entry : fs::directory_iterator(artifacts))
    if (entry.is_regular_file() && entry.path().extension() == ".txt")
      artifact_files.push_back(entry.path());
  std::sort(artifact_files.begin(), artifact_files.end());
  for (const fs::path& path : artifact_files) {
    const std::string frame = read_file_frame(path);
    g_current_input = frame;
    const fuzz::RunOutcome outcome =
        fuzz::run_one(*service, frame, map, hang_ms);
    map.merge_new();
    ++replayed;
    corpus.push_back(frame);
    if (outcome.verdict != fuzz::Verdict::Ok) {
      ++replay_failures;
      std::fprintf(stderr, "REPLAY RED %s: %s (%s)\n",
                   path.filename().c_str(),
                   fuzz::verdict_name(outcome.verdict),
                   outcome.detail.c_str());
    }
  }
  std::printf("fuzz_protocol: replayed %ld regression artifacts, %ld red\n",
              replayed, replay_failures);

  // Prime coverage with the builtin seeds too.
  for (const std::string& seed_input : fuzz::builtin_seeds()) {
    g_current_input = seed_input;
    fuzz::run_one(*service, seed_input, map, hang_ms);
    map.merge_new();
  }

  // Phase 2: the mutation loop.
  long executed = 0;
  long coverage_adds = 0;
  std::vector<std::string> written;
  if (!replay_only) {
    Rng rng(seed);
    constexpr std::size_t kMaxCorpus = 4096;
    constexpr std::size_t kMaxArtifacts = 16;
    for (long i = 0; i < iterations; ++i) {
      const std::string& base = corpus[rng.below(corpus.size())];
      const std::string& donor = corpus[rng.below(corpus.size())];
      const std::string input =
          fuzz::clamp_cost(fuzz::mutate(base, donor, rng));
      g_current_input = input;
      const fuzz::RunOutcome outcome =
          fuzz::run_one(*service, input, map, hang_ms);
      ++executed;
      if (outcome.verdict != fuzz::Verdict::Ok) {
        findings.count(outcome.verdict);
        const std::string minimized = fuzz::clamp_cost(
            fuzz::minimize(*service, input, outcome.verdict, map, hang_ms));
        map.merge_new();
        if (written.size() < kMaxArtifacts) {
          const std::string name =
              std::string(fuzz::verdict_name(outcome.verdict)) + "-" +
              fuzz::content_hash(minimized) + ".txt";
          const fs::path path = artifacts / name;
          if (!fs::exists(path)) {
            std::ofstream out(path, std::ios::binary);
            out.write(minimized.data(),
                      static_cast<std::streamsize>(minimized.size()));
            out.put('\n');
            written.push_back(name);
            std::fprintf(stderr,
                         "FINDING %s: %s\n  input: %s\n  detail: %s\n",
                         fuzz::verdict_name(outcome.verdict), name.c_str(),
                         minimized.c_str(), outcome.detail.c_str());
          }
        }
        continue;
      }
      const std::size_t fresh = map.merge_new();
      if (fresh > 0) {
        ++coverage_adds;
        if (corpus.size() < kMaxCorpus) corpus.push_back(input);
      }
      if ((i + 1) % 2000 == 0)
        std::printf("  %ld/%ld executed, corpus %zu, coverage %zu slots, "
                    "%ld findings\n",
                    i + 1, iterations, corpus.size(), map.covered(),
                    findings.total());
    }
  }

  const bool all_green = replay_failures == 0 && findings.total() == 0;
  std::printf("\n  regression artifacts replayed ............. %ld\n",
              replayed);
  std::printf("  mutated inputs executed ................... %ld\n",
              executed);
  std::printf("  final corpus size ......................... %zu\n",
              corpus.size());
  std::printf("  coverage slots lit ........................ %zu\n",
              map.covered());
  std::printf("  corpus-joining inputs (new coverage) ...... %ld\n",
              coverage_adds);
  std::printf("  findings crash/hang/badresp ............... %ld / %ld / "
              "%ld\n",
              findings.crash, findings.hang, findings.badresp);
  std::printf("  verdict ................................... %s\n\n",
              all_green ? "GREEN" : "RED");

  std::string artifact_list = "[";
  for (std::size_t i = 0; i < written.size(); ++i) {
    if (i > 0) artifact_list += ",";
    artifact_list += "\"" + written[i] + "\"";
  }
  artifact_list += "]";
  std::printf("FUZZ_JSON {\"bench\":\"fuzz_protocol\",\"iterations\":%ld,"
              "\"seed\":%llu,\"executed\":%ld,\"replayed\":%ld,"
              "\"replay_failures\":%ld,\"corpus\":%zu,"
              "\"coverage_slots\":%zu,\"coverage_adds\":%ld,"
              "\"findings\":{\"crash\":%ld,\"hang\":%ld,\"badresp\":%ld},"
              "\"artifacts_written\":%s,\"all_green\":%s}\n",
              iterations, static_cast<unsigned long long>(seed), executed,
              replayed, replay_failures, corpus.size(), map.covered(),
              coverage_adds, findings.crash, findings.hang, findings.badresp,
              artifact_list.c_str(), all_green ? "true" : "false");
  return all_green ? 0 : 1;
}
