#include "tests/fuzz/fuzz_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "server/protocol.hpp"
#include "tests/server/server_test_util.hpp"

namespace memstress::fuzz {

// ---------------------------------------------------------------------------
// Dictionary.

const std::vector<std::string>& dictionary() {
  static const std::vector<std::string> words = {
      // Envelope structure.
      "{\"v\":1,", "\"v\":", "\"id\":", "\"type\":", "\"params\":",
      "\"requests\":",
      // Every request type, including the hidden one.
      "\"coverage\"", "\"dpm\"", "\"schedule\"", "\"detectability\"",
      "\"metrics\"", "\"health\"", "\"sleep\"", "\"batch\"",
      // Handler parameter keys.
      "\"yield\":", "\"defect_coverage\":", "\"geometry\":", "\"x_rows\":",
      "\"y_columns\":", "\"bits_per_word\":", "\"cells\":",
      "\"monte_carlo_defects\":", "\"seed\":", "\"kind\":", "\"category\":",
      "\"resistance\":", "\"vdd\":", "\"period\":", "\"ms\":",
      "\"bridge\"", "\"open\"", "\"cell-node-bitline\"",
      // Technology backend selection and its parameter packs.
      "\"technology\":", "\"sram6t\"", "\"stt_mram\"", "\"undervolt\"",
      "\"mtj\"", "\"mtj\":", "\"undervolt\":", "\"resistances\":",
      "\"r_parallel\":", "\"tmr\":", "\"delta_nominal\":", "\"v_c0\":",
      "\"retention_time\":", "\"v_safe\":", "\"v_cliff\":",
      "\"margin_nominal\":", "\"retention\"", "\"transition\"",
      "\"read-disturb\"",
      // Literals and boundary values the parser special-cases.
      "true", "false", "null", "0", "-1", "1e309", "-1e309", "1e-309",
      "9007199254740993", "2147483648", "0.5", "1000000", "\\u0000",
      "\\ud800", "\\udc00", "\\\"", "\\\\", "{}", "[]", "[[[[", "]]]]",
      ",", ":", "\"", "\\",
  };
  return words;
}

// ---------------------------------------------------------------------------
// Mutator.

namespace {

constexpr std::size_t kMaxInputBytes = 8192;
constexpr int kMaxOps = 6;

void op_bit_flip(std::string& data, Rng& rng) {
  if (data.empty()) return;
  const std::size_t i = rng.below(data.size());
  data[i] = static_cast<char>(data[i] ^ (1u << rng.below(8)));
}

void op_byte_set(std::string& data, Rng& rng) {
  if (data.empty()) return;
  data[rng.below(data.size())] = static_cast<char>(rng.below(256));
}

void op_insert_dictionary(std::string& data, Rng& rng) {
  const auto& words = dictionary();
  const std::string& word = words[rng.below(words.size())];
  data.insert(rng.below(data.size() + 1), word);
}

void op_delete_range(std::string& data, Rng& rng) {
  if (data.empty()) return;
  const std::size_t start = rng.below(data.size());
  const std::size_t len = 1 + rng.below(std::min<std::size_t>(
                                  data.size() - start, 16));
  data.erase(start, len);
}

void op_duplicate_range(std::string& data, Rng& rng) {
  if (data.empty()) return;
  const std::size_t start = rng.below(data.size());
  const std::size_t len = 1 + rng.below(std::min<std::size_t>(
                                  data.size() - start, 32));
  data.insert(rng.below(data.size() + 1), data.substr(start, len));
}

void op_splice_donor(std::string& data, const std::string& donor, Rng& rng) {
  if (donor.empty()) return;
  const std::size_t start = rng.below(donor.size());
  const std::size_t len = 1 + rng.below(std::min<std::size_t>(
                                  donor.size() - start, 64));
  data.insert(rng.below(data.size() + 1), donor.substr(start, len));
}

void op_truncate(std::string& data, Rng& rng) {
  if (data.empty()) return;
  data.resize(rng.below(data.size()));
}

void op_number_tweak(std::string& data, Rng& rng) {
  // Find a digit run (scanning from a random start) and replace it with a
  // boundary value — the cheapest way to probe overflow edges.
  static const char* kBoundaries[] = {"0",          "-1",
                                      "2147483648", "9007199254740993",
                                      "1e309",      "999999999999999999999"};
  if (data.empty()) return;
  const std::size_t from = rng.below(data.size());
  for (std::size_t i = from; i < data.size(); ++i) {
    if (data[i] < '0' || data[i] > '9') continue;
    std::size_t end = i;
    while (end < data.size() && data[end] >= '0' && data[end] <= '9') ++end;
    data.replace(i, end - i,
                 kBoundaries[rng.below(std::size(kBoundaries))]);
    return;
  }
}

}  // namespace

std::string mutate(const std::string& input, const std::string& corpus_donor,
                   Rng& rng) {
  std::string data = input;
  const int ops = 1 + static_cast<int>(rng.below(kMaxOps));
  for (int i = 0; i < ops; ++i) {
    switch (rng.below(8)) {
      case 0: op_bit_flip(data, rng); break;
      case 1: op_byte_set(data, rng); break;
      case 2: op_insert_dictionary(data, rng); break;
      case 3: op_delete_range(data, rng); break;
      case 4: op_duplicate_range(data, rng); break;
      case 5: op_splice_donor(data, corpus_donor, rng); break;
      case 6: op_truncate(data, rng); break;
      default: op_number_tweak(data, rng); break;
    }
  }
  if (data.size() > kMaxInputBytes) data.resize(kMaxInputBytes);
  return data;
}

// ---------------------------------------------------------------------------
// Coverage plumbing.

std::size_t CoverageMap::merge_new() {
  std::size_t fresh = 0;
  for (std::size_t i = 0; i < kSlots; ++i) {
    if (current_[i] && !accumulated_[i]) {
      accumulated_[i] = 1;
      ++fresh;
    }
    current_[i] = 0;
  }
  covered_ += fresh;
  return fresh;
}

namespace {
CoverageMap* g_sink = nullptr;
}

CoverageMap* coverage_sink() { return g_sink; }
void set_coverage_sink(CoverageMap* map) { g_sink = map; }

namespace {

/// Fallback coverage: parser state transitions bucketed by log2 position.
/// Edges (previous event -> event) approximate branch coverage well enough
/// to steer mutation when no SanitizerCoverage instrumentation exists.
server::ParseEvent g_prev_event = server::ParseEvent::Object;

void parse_trace_to_sink(server::ParseEvent event, std::size_t pos) {
  CoverageMap* sink = g_sink;
  if (sink == nullptr) return;
  std::uint32_t bucket = 0;
  while (pos != 0) {
    ++bucket;
    pos >>= 1;
  }
  const auto from = static_cast<std::uint32_t>(g_prev_event);
  const auto to = static_cast<std::uint32_t>(event);
  g_prev_event = event;
  // Slots 0x8000+ are reserved for the fallback so they never collide with
  // the (small) guard ids SanitizerCoverage hands out.
  sink->hit(0x8000u + ((from * 16u + to) * 16u + bucket));
}

}  // namespace

// SanitizerCoverage callbacks: live in every binary linking the engine, fire
// only when the build adds -fsanitize-coverage=trace-pc-guard. Guard ids are
// assigned densely from 1, so they map onto the low CoverageMap slots.
extern "C" void __sanitizer_cov_trace_pc_guard_init(std::uint32_t* start,
                                                    std::uint32_t* stop) {
  static std::uint32_t next_id = 1;
  for (std::uint32_t* guard = start; guard < stop; ++guard)
    if (*guard == 0) *guard = next_id++;
}

extern "C" void __sanitizer_cov_trace_pc_guard(std::uint32_t* guard) {
  CoverageMap* sink = g_sink;
  if (sink != nullptr) sink->hit(*guard);
}

// GCC's spelling (-fsanitize-coverage=trace-pc) calls this one with no
// guard id; hash the call site's address into the slot space instead.
// Collisions with guard/fallback slots only under-count coverage — safe
// for steering mutation, which is all the map is for.
extern "C" void __sanitizer_cov_trace_pc() {
  CoverageMap* sink = g_sink;
  if (sink == nullptr) return;
  const auto pc =
      reinterpret_cast<std::uintptr_t>(__builtin_return_address(0));
  sink->hit(static_cast<std::uint32_t>((pc >> 4) ^ (pc >> 17)));
}

// ---------------------------------------------------------------------------
// Harness + oracle.

const char* verdict_name(Verdict verdict) {
  switch (verdict) {
    case Verdict::Ok: return "ok";
    case Verdict::BadResponse: return "badresp";
    case Verdict::Hang: return "hang";
    case Verdict::Crash: return "crash";
  }
  return "unknown";
}

std::string clamp_cost(const std::string& input) {
  static const std::string kKey = "monte_carlo_defects";
  std::string out = input;
  std::size_t at = 0;
  while ((at = out.find(kKey, at)) != std::string::npos) {
    std::size_t i = at + kKey.size();
    // Skip the little syntax between key and value (quote, colon, spaces).
    while (i < out.size() && i < at + kKey.size() + 8 &&
           (out[i] == '"' || out[i] == ':' || out[i] == ' '))
      ++i;
    std::size_t end = i;
    while (end < out.size() && out[end] >= '0' && out[end] <= '9') ++end;
    const std::size_t digits = end - i;
    if (digits >= 5 && digits <= 7) out.replace(i, digits, "2000");
    at += kKey.size();
  }
  return out;
}

RunOutcome run_one(const server::MemstressService& service,
                   const std::string& input, CoverageMap& map, int hang_ms) {
  RunOutcome outcome;
  map.clear_current();
  set_coverage_sink(&map);
  server::set_parse_trace(&parse_trace_to_sink);
  const auto start = std::chrono::steady_clock::now();
  bool threw = false;
  try {
    outcome.response =
        server::handle_line_inprocess(service, input, hang_ms);
  } catch (const std::exception& e) {
    threw = true;
    outcome.detail = std::string("escaped exception: ") + e.what();
  } catch (...) {
    threw = true;
    outcome.detail = "escaped non-standard exception";
  }
  outcome.elapsed_s = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  server::set_parse_trace(nullptr);
  set_coverage_sink(nullptr);

  if (threw) {
    outcome.verdict = Verdict::Crash;
  } else if (outcome.elapsed_s * 1e3 > hang_ms) {
    outcome.verdict = Verdict::Hang;
    outcome.detail = "exceeded the hang budget";
  } else {
    // The serving oracle: exactly one line of parseable JSON with the
    // ok/error envelope.
    outcome.verdict = Verdict::BadResponse;
    if (outcome.response.empty()) {
      outcome.detail = "empty response";
    } else if (outcome.response.find('\n') != std::string::npos) {
      outcome.detail = "response contains a newline";
    } else {
      try {
        const server::Json doc = server::Json::parse(outcome.response);
        const server::Json* ok = doc.is_object() ? doc.find("ok") : nullptr;
        const server::Json* error =
            doc.is_object() ? doc.find("error") : nullptr;
        if (!doc.is_object()) {
          outcome.detail = "response is not an object";
        } else if (ok == nullptr || !ok->is_bool()) {
          outcome.detail = "response lacks a boolean \"ok\"";
        } else if (!ok->as_bool() &&
                   !(error != nullptr && error->is_object() &&
                     error->find("code") != nullptr)) {
          outcome.detail = "error response lacks a structured code";
        } else {
          outcome.verdict = Verdict::Ok;
        }
      } catch (const std::exception& e) {
        outcome.detail = std::string("unparseable response: ") + e.what();
      }
    }
  }

  // Outcome features widen the fallback signal beyond the parser: distinct
  // verdicts and error codes count as coverage too.
  map.hit(0xF000u + static_cast<std::uint32_t>(outcome.verdict));
  if (!outcome.response.empty()) {
    const std::size_t code_at = outcome.response.find("\"code\":\"");
    if (code_at != std::string::npos) {
      std::uint32_t h = 2166136261u;
      for (std::size_t i = code_at + 8;
           i < outcome.response.size() && outcome.response[i] != '"'; ++i)
        h = (h ^ static_cast<std::uint8_t>(outcome.response[i])) * 16777619u;
      map.hit(0xF100u + (h & 0xFFu));
    }
  }
  return outcome;
}

std::string minimize(const server::MemstressService& service,
                     const std::string& input, Verdict verdict,
                     CoverageMap& map, int hang_ms) {
  std::string best = input;
  int budget = 512;  // executions, not bytes — minimization stays bounded
  for (std::size_t chunk = std::max<std::size_t>(best.size() / 2, 1);
       chunk >= 1 && budget > 0; chunk /= 2) {
    bool shrunk = true;
    while (shrunk && budget > 0) {
      shrunk = false;
      for (std::size_t at = 0; at + chunk <= best.size() && budget > 0;
           at += chunk) {
        std::string candidate = best;
        candidate.erase(at, chunk);
        --budget;
        if (run_one(service, candidate, map, hang_ms).verdict == verdict) {
          best = std::move(candidate);
          shrunk = true;
          break;  // restart the scan on the shorter input
        }
      }
    }
    if (chunk == 1) break;
  }
  return best;
}

std::string content_hash(const std::string& data) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  char hex[20];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(h));
  return hex;
}

std::vector<std::string> builtin_seeds() {
  return {
      "{\"v\":1,\"id\":1,\"type\":\"health\"}",
      "{\"v\":1,\"id\":2,\"type\":\"metrics\"}",
      "{\"v\":1,\"id\":3,\"type\":\"dpm\",\"params\":"
      "{\"yield\":0.95,\"defect_coverage\":0.99}}",
      "{\"v\":1,\"id\":4,\"type\":\"coverage\",\"params\":"
      "{\"geometry\":{\"x_rows\":128,\"y_columns\":32,"
      "\"bits_per_word\":4}}}",
      "{\"v\":1,\"id\":5,\"type\":\"detectability\",\"params\":"
      "{\"kind\":\"bridge\",\"category\":\"cell-node-bitline\","
      "\"resistance\":1000,\"vdd\":1.0,\"period\":1e-07}}",
      "{\"v\":1,\"id\":6,\"type\":\"schedule\",\"params\":"
      "{\"cells\":4096,\"monte_carlo_defects\":300,\"seed\":42}}",
      "{\"v\":1,\"id\":7,\"type\":\"sleep\",\"params\":{\"ms\":1}}",
      // Technology-qualified requests: a matching assertion and the
      // cross-technology mismatch (the test service serves sram6t).
      "{\"v\":1,\"id\":9,\"type\":\"coverage\",\"params\":"
      "{\"technology\":\"sram6t\"}}",
      "{\"v\":1,\"id\":10,\"type\":\"detectability\",\"params\":"
      "{\"technology\":\"stt_mram\",\"kind\":\"mtj\","
      "\"category\":\"retention\",\"resistance\":1300,\"vdd\":1.0,"
      "\"period\":1e-07}}",
      "{\"v\":1,\"id\":8,\"type\":\"batch\",\"requests\":"
      "[{\"type\":\"health\"},{\"type\":\"dpm\",\"params\":"
      "{\"yield\":0.9,\"defect_coverage\":0.95}}]}",
      // Structured near-misses: valid JSON, wrong envelope.
      "{\"v\":2,\"id\":1,\"type\":\"health\"}",
      "{\"id\":1,\"type\":\"health\"}",
      "{\"v\":1,\"id\":\"one\",\"type\":\"health\"}",
      "[\"not\",\"an\",\"object\"]",
  };
}

}  // namespace memstress::fuzz
