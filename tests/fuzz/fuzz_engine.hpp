// Coverage-guided mutation engine for the memstressd protocol fuzzer.
//
// The pieces, AFL-style but self-contained (no external fuzzing runtime):
//   * Dictionary — protocol keywords (envelope keys, request types,
//     boundary literals) the mutator splices in, so mutated inputs keep
//     hitting the deep handler paths instead of dying at byte 0.
//   * Mutator — seeded stack of byte-level operations: bit flips, byte
//     sets, range deletion/duplication, cross-input splice, truncation,
//     dictionary insertion and number boundary tweaks.
//   * CoverageMap — a 64 KiB hit map. Fed from two sources: real edge
//     coverage via SanitizerCoverage's trace_pc_guard callbacks when the
//     build has -fsanitize-coverage=trace-pc-guard (the fuzz binary defines
//     the callbacks; they simply never fire otherwise), and an always-on
//     fallback: parser state events (server/protocol.hpp's parse-trace
//     seam) plus outcome features. Inputs that light new slots join the
//     corpus — that is the "guided" in coverage-guided.
//   * run_one — the execution harness + oracle. An input passes when the
//     serving path answers with one line of valid-envelope JSON within the
//     hang budget; anything else (escaped exception, unparseable or
//     multi-line response, overrun) is a finding.
//   * minimize — greedy chunk removal preserving the verdict, so
//     regression artifacts are readable.
//
// Everything is deterministic for a given seed: the 10k-iteration ctest
// smoke explores the same inputs on every machine.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "server/service.hpp"
#include "util/rng.hpp"

namespace memstress::fuzz {

/// Protocol keywords worth splicing into mutated inputs.
const std::vector<std::string>& dictionary();

/// One seeded mutation stack (1..kMaxOps operations) applied to `input`.
/// `corpus_donor` (possibly empty) is a second input for splice ops.
std::string mutate(const std::string& input, const std::string& corpus_donor,
                   Rng& rng);

/// AFL-style hit map. hit() is called from the SanitizerCoverage callbacks
/// and the parser-trace fallback, so it must stay cheap and lock-free
/// (single-threaded fuzz loop; plain writes).
class CoverageMap {
 public:
  static constexpr std::size_t kSlots = 1 << 16;

  void hit(std::uint32_t id) { current_[id & (kSlots - 1)] = 1; }

  /// Fold the current execution's hits into the accumulated map and return
  /// how many slots were newly lit. Clears the current map for the next
  /// run.
  std::size_t merge_new();

  /// Total slots ever lit (the coverage figure reported by FUZZ_JSON).
  std::size_t covered() const { return covered_; }

  void clear_current() { current_.fill(0); }

 private:
  std::array<std::uint8_t, kSlots> current_{};
  std::array<std::uint8_t, kSlots> accumulated_{};
  std::size_t covered_ = 0;
};

/// The process-wide sink the instrumentation callbacks feed. Installed by
/// the harness around each execution; null outside of runs.
CoverageMap* coverage_sink();
void set_coverage_sink(CoverageMap* map);

enum class Verdict {
  Ok,           ///< structured one-line response in time
  BadResponse,  ///< empty / multi-line / unparseable / envelope-less
  Hang,         ///< exceeded the hang budget
  Crash,        ///< an exception escaped the serving path
};

const char* verdict_name(Verdict verdict);

struct RunOutcome {
  Verdict verdict = Verdict::Ok;
  std::string detail;    ///< what the oracle saw (for triage)
  std::string response;  ///< raw response line when one was produced
  double elapsed_s = 0.0;
};

/// Rewrite runaway Monte-Carlo budgets (5-7 digit monte_carlo_defects
/// values — legal, but thousands of times slower than the smoke budget
/// allows) down to 2000. 8+ digit values stay: they exercise the fast
/// validation-reject path. Applied before execution AND before artifacts
/// are written, so replay cost stays bounded too.
std::string clamp_cost(const std::string& input);

/// Execute one (already cost-clamped) input through the in-process serving
/// path with the coverage sink armed, and judge it against the oracle.
RunOutcome run_one(const server::MemstressService& service,
                   const std::string& input, CoverageMap& map,
                   int hang_ms = 2000);

/// Greedy minimization: repeatedly drop chunks while the verdict (by kind)
/// is preserved. Bounded work — meant for artifact readability, not
/// optimality.
std::string minimize(const server::MemstressService& service,
                     const std::string& input, Verdict verdict,
                     CoverageMap& map, int hang_ms = 2000);

/// FNV-1a content hash, used to name artifacts (crash-<hash>.txt).
std::string content_hash(const std::string& data);

/// Built-in seed corpus: one well-formed request of every protocol type
/// (including batch and the hidden sleep), plus a few structured near-miss
/// frames.
std::vector<std::string> builtin_seeds();

}  // namespace memstress::fuzz
