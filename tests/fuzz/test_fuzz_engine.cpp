// Unit tests for the fuzz engine itself: deterministic mutation, coverage
// bookkeeping, the cost clamp, the serving oracle and the minimizer. The
// engine guards the protocol stack — these tests guard the engine.
#include "tests/fuzz/fuzz_engine.hpp"

#include <string>

#include <gtest/gtest.h>

#include "tests/server/server_test_util.hpp"

namespace memstress::fuzz {
namespace {

TEST(FuzzMutator, DeterministicForAGivenSeed) {
  const std::string input = "{\"v\":1,\"id\":1,\"type\":\"health\"}";
  const std::string donor = builtin_seeds().back();
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 200; ++i)
    EXPECT_EQ(mutate(input, donor, a), mutate(input, donor, b));
}

TEST(FuzzMutator, ProducesDiverseOutputs) {
  const std::string input = "{\"v\":1,\"id\":1,\"type\":\"health\"}";
  Rng rng(7);
  int changed = 0;
  for (int i = 0; i < 100; ++i)
    if (mutate(input, input, rng) != input) ++changed;
  EXPECT_GT(changed, 90);  // near-always actually mutates
}

TEST(FuzzMutator, RespectsTheSizeCap) {
  std::string input(7000, 'a');
  Rng rng(3);
  for (int i = 0; i < 50; ++i)
    EXPECT_LE(mutate(input, input, rng).size(), 8192u);
}

TEST(FuzzCoverage, MergeCountsOnlyNewSlots) {
  CoverageMap map;
  map.hit(1);
  map.hit(2);
  EXPECT_EQ(map.merge_new(), 2u);
  map.hit(2);
  map.hit(3);
  EXPECT_EQ(map.merge_new(), 1u);  // only slot 3 is new
  EXPECT_EQ(map.covered(), 3u);
  EXPECT_EQ(map.merge_new(), 0u);  // current map was cleared by the merge
}

TEST(FuzzClamp, RewritesRunawayMonteCarloBudgets) {
  EXPECT_EQ(clamp_cost("{\"monte_carlo_defects\":500000}"),
            "{\"monte_carlo_defects\":2000}");
  EXPECT_EQ(clamp_cost("{\"monte_carlo_defects\": 99999,\"seed\":1}"),
            "{\"monte_carlo_defects\": 2000,\"seed\":1}");
  // Small budgets and validation-rejected huge ones stay untouched.
  EXPECT_EQ(clamp_cost("{\"monte_carlo_defects\":300}"),
            "{\"monte_carlo_defects\":300}");
  EXPECT_EQ(clamp_cost("{\"monte_carlo_defects\":20000000}"),
            "{\"monte_carlo_defects\":20000000}");
  // Unrelated numbers are never rewritten.
  EXPECT_EQ(clamp_cost("{\"resistance\":100000}"),
            "{\"resistance\":100000}");
}

TEST(FuzzHarness, ValidRequestOfEveryTypeIsOk) {
  const auto service = server::make_test_service();
  CoverageMap map;
  for (const std::string& seed : builtin_seeds()) {
    const RunOutcome outcome = run_one(*service, seed, map, 2000);
    EXPECT_EQ(outcome.verdict, Verdict::Ok)
        << seed << " -> " << outcome.detail;
    map.merge_new();
  }
  EXPECT_GT(map.covered(), 0u) << "no run lit any coverage slot";
}

TEST(FuzzHarness, GarbageBytesStillGetAStructuredAnswer) {
  const auto service = server::make_test_service();
  CoverageMap map;
  const RunOutcome outcome =
      run_one(*service, std::string("\xff\xfe\x00garbage", 10), map, 2000);
  EXPECT_EQ(outcome.verdict, Verdict::Ok) << outcome.detail;
  EXPECT_NE(outcome.response.find("parse_error"), std::string::npos);
}

TEST(FuzzHarness, DistinctInputsLightDistinctSlots) {
  const auto service = server::make_test_service();
  CoverageMap map;
  run_one(*service, "{\"v\":1,\"id\":1,\"type\":\"health\"}", map, 2000);
  map.merge_new();
  // A structurally different input (array envelope) must add coverage.
  const std::size_t before = map.covered();
  run_one(*service, "[1,2,3]", map, 2000);
  map.merge_new();
  EXPECT_GT(map.covered(), before);
}

TEST(FuzzMinimize, ShrinksWhilePreservingTheVerdict) {
  // Synthetic finding: the oracle treats a response with a newline as
  // BadResponse — there is no real such bug, so manufacture the verdict
  // with a harness-level check instead: minimize an unparseable frame down
  // while it keeps failing to parse as a request (parse_error responses
  // are verdict Ok, so use a Crash-free proxy: minimize on Ok verdict).
  // Minimizing an Ok input must strip it to the smallest input that still
  // answers structurally — which is the empty frame (parse_error).
  const auto service = server::make_test_service();
  CoverageMap map;
  const std::string input =
      "{\"v\":1,\"id\":1,\"type\":\"health\",\"params\":{}}";
  const std::string minimized =
      minimize(*service, input, Verdict::Ok, map, 2000);
  EXPECT_LT(minimized.size(), input.size());
  EXPECT_EQ(run_one(*service, minimized, map, 2000).verdict, Verdict::Ok);
}

TEST(FuzzArtifacts, ContentHashIsStableAndCollisionAware) {
  EXPECT_EQ(content_hash("abc"), content_hash("abc"));
  EXPECT_NE(content_hash("abc"), content_hash("abd"));
  EXPECT_EQ(content_hash("").size(), 16u);
}

TEST(FuzzSmoke, ThousandIterationsFindNothingOnTheCurrentStack) {
  // A miniature fixed-seed fuzz run inside tier-1: mutate from the builtin
  // seeds and require zero findings. The full 10k smoke runs via ctest as
  // fuzz_smoke; this inline version catches engine regressions (e.g. an
  // oracle that starts flagging healthy responses) even when the fuzz
  // label is not scheduled.
  const auto service = server::make_test_service();
  CoverageMap map;
  std::vector<std::string> corpus = builtin_seeds();
  Rng rng(42);
  long findings = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::string input = clamp_cost(
        mutate(corpus[rng.below(corpus.size())],
               corpus[rng.below(corpus.size())], rng));
    const RunOutcome outcome = run_one(*service, input, map, 2000);
    if (outcome.verdict != Verdict::Ok) {
      ++findings;
      ADD_FAILURE() << verdict_name(outcome.verdict) << ": "
                    << outcome.detail << "\n  input: " << input;
    }
    if (map.merge_new() > 0 && corpus.size() < 512) {
      corpus.push_back(input);
    }
  }
  EXPECT_EQ(findings, 0);
  EXPECT_GT(map.covered(), 50u);  // the loop actually explored
}

}  // namespace
}  // namespace memstress::fuzz
