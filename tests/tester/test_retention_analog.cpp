// Transistor-level validation of the data-retention physics: a pull-up
// open turns the stored '1' into dynamically-held charge that leaks away,
// while a healthy cell retains indefinitely.
//
// The cell leak is accelerated (2 MOhm -> tau ~ microseconds instead of
// the real milliseconds) so the pause fits in simulated time; the R*C
// scaling law, not the absolute constant, is the validated behaviour.
#include <gtest/gtest.h>

#include "analog/engine.hpp"
#include "defects/defect.hpp"
#include "layout/netnames.hpp"
#include "sram/block.hpp"

namespace memstress::tester {
namespace {

namespace nn = memstress::layout;

/// Park a single written-'1' cell for `pause_s` and return V(cell_t).
double cell_voltage_after_pause(bool pullup_open, double pause_s) {
  sram::BlockSpec spec;
  spec.rows = 2;
  spec.cols = 1;
  spec.cell_leak_ohms = 2e6;  // accelerated junction leakage
  analog::Netlist nl = sram::build_block(spec);
  if (pullup_open) {
    defects::Defect d = defects::representative_open(
        layout::OpenCategory::CellPullup, spec, 1e9);  // hard open
    defects::inject(nl, d);
  }
  // No clocking at all: hold the cell at its written state via initial
  // conditions and let the leak do its work.
  analog::Simulator sim(nl);
  sim.set_initial(nn::net_cell_t(0, 0), 1.8);
  sim.set_initial(nn::net_cell_t(0, 0) + "_pu", 1.8);
  sim.set_initial(nn::net_cell_f(0, 0), 0.0);
  sim.set_initial(nn::net_cell_t(1, 0), 0.0);
  sim.set_initial(nn::net_cell_f(1, 0), 1.8);
  sim.set_initial(nn::net_bl(0), 1.8);
  sim.set_initial(nn::net_bl(0) + "_spine", 1.8);
  sim.set_initial(nn::net_blb(0), 1.8);
  analog::TransientSpec spec_t;
  spec_t.t_stop = pause_s;
  spec_t.dt = pause_s / 400;
  const analog::Trace trace = sim.run(spec_t, {nn::net_cell_t(0, 0)});
  return trace.value_at(nn::net_cell_t(0, 0), pause_s);
}

TEST(RetentionAnalog, HealthyCellRetainsThroughThePause) {
  // The pull-up replenishes the leaked charge: the '1' survives a pause
  // of many leak time-constants (tau = 2 fF * 2 MOhm = 4 ns here).
  EXPECT_GT(cell_voltage_after_pause(false, 2e-6), 1.5);
}

TEST(RetentionAnalog, PullupOpenCellDecays) {
  // With the pull-up path open the node has no DC source: it decays
  // through the leak toward ground and the '1' is lost.
  EXPECT_LT(cell_voltage_after_pause(true, 2e-6), 0.4);
}

TEST(RetentionAnalog, DecayFollowsTheLeakTimeConstant) {
  // Shorter pauses leave proportionally more charge: V(t1) > V(t2) for
  // t1 < t2, both below the healthy level.
  const double early = cell_voltage_after_pause(true, 5e-9);
  const double late = cell_voltage_after_pause(true, 100e-9);
  EXPECT_GT(early, late);
  // The decay is regenerative (once the node nears the inverter trip the
  // cross-coupled pair flips), so it runs faster than a bare R*C — but at
  // ~1 tau a clear majority of the charge is still present.
  EXPECT_GT(early, 0.55);
  EXPECT_LT(late, 0.2);  // >> tau: gone
}

}  // namespace
}  // namespace memstress::tester
