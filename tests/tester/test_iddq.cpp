#include "tester/iddq.hpp"

#include <gtest/gtest.h>

#include "defects/defect.hpp"
#include "sram/block.hpp"

namespace memstress::tester {
namespace {

sram::BlockSpec block_2x1() {
  sram::BlockSpec spec;
  spec.rows = 2;
  spec.cols = 1;
  return spec;
}

TEST(IddqScreen, ThresholdScalesWithMemorySize) {
  IddqScreen small;
  small.cells = 1024;
  IddqScreen large;
  large.cells = 1024 * 1024;
  EXPECT_NEAR(large.threshold_a() / small.threshold_a(), 1024.0, 1e-6);
}

TEST(IddqScreen, DetectionComparesDefectCurrentToBackground) {
  IddqScreen screen;
  screen.leakage_per_cell_a = 1e-10;
  screen.cells = 1000;        // background 0.1 uA, threshold 0.02 uA
  IddqMeasurement strong;
  strong.baseline_a = 1e-9;
  strong.current_a = 1e-6;    // 1 uA defect
  EXPECT_TRUE(screen.detects(strong));
  IddqMeasurement weak;
  weak.baseline_a = 1e-9;
  weak.current_a = 1.5e-8;    // 14 nA defect < 20 nA threshold
  EXPECT_FALSE(screen.detects(weak));
}

// Analog measurements below cost a few hundred ms each.

TEST(MeasureIddq, FaultFreeBlockDrawsOnlyLeakage) {
  const analog::Netlist golden = sram::build_block(block_2x1());
  const IddqMeasurement m =
      measure_iddq(golden, golden, block_2x1(), {1.8, 25e-9});
  EXPECT_NEAR(m.defect_current_a(), 0.0, 1e-9);
  // The healthy quiescent current of a 2-cell block is far below a microamp
  // (decoder leak resistor plus model leakage floors).
  EXPECT_LT(std::abs(m.baseline_a), 2e-6);
}

TEST(MeasureIddq, BridgeDrawsMicroamps) {
  const sram::BlockSpec spec = block_2x1();
  const analog::Netlist golden = sram::build_block(spec);
  analog::Netlist faulty = golden;
  defects::inject(faulty, defects::representative_bridge(
                              layout::BridgeCategory::CellTrueFalse, spec, 90e3));
  const IddqMeasurement m =
      measure_iddq(golden, std::move(faulty), spec, {1.8, 25e-9});
  // A 90 kOhm bridge across a cell holding a '0' draws ~Vdd/R ~ 20 uA.
  EXPECT_GT(m.defect_current_a(), 5e-6);
  EXPECT_LT(m.defect_current_a(), 60e-6);
}

TEST(MeasureIddq, OpenDrawsNoExtraCurrent) {
  // Iddq's blind spot: resistive opens add no DC path.
  const sram::BlockSpec spec = block_2x1();
  const analog::Netlist golden = sram::build_block(spec);
  analog::Netlist faulty = golden;
  defects::inject(faulty, defects::representative_open(
                              layout::OpenCategory::CellAccess, spec, 30e3));
  const IddqMeasurement m =
      measure_iddq(golden, std::move(faulty), spec, {1.8, 25e-9});
  EXPECT_LT(std::abs(m.defect_current_a()), 1e-7);
}

TEST(MeasureIddq, ScalingKillsIddqForLargeMemories) {
  // The Kruseman-02 story in one test: the same 90 kOhm bridge current is
  // detectable against a 4 Kbit background and invisible against 4 Mbit.
  const sram::BlockSpec spec = block_2x1();
  const analog::Netlist golden = sram::build_block(spec);
  analog::Netlist faulty = golden;
  defects::inject(faulty, defects::representative_bridge(
                              layout::BridgeCategory::CellTrueFalse, spec, 90e3));
  const IddqMeasurement m =
      measure_iddq(golden, std::move(faulty), spec, {1.8, 25e-9});

  IddqScreen small;
  small.cells = 4 * 1024;
  IddqScreen large;
  large.cells = 4 * 1024 * 1024;
  EXPECT_TRUE(small.detects(m));
  EXPECT_FALSE(large.detects(m));
}

}  // namespace
}  // namespace memstress::tester
