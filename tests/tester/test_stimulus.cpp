#include "tester/stimulus.hpp"

#include <gtest/gtest.h>

#include "march/library.hpp"
#include "util/error.hpp"

namespace memstress::tester {
namespace {

sram::BlockSpec block_2x1() {
  sram::BlockSpec spec;
  spec.rows = 2;
  spec.cols = 1;
  return spec;
}

const analog::VSource& source(const analog::Netlist& nl, const std::string& name) {
  for (const auto& src : nl.vsources())
    if (src.name == name) return src;
  throw Error("missing source " + name);
}

TEST(CompileMarch, CycleCountIsComplexityTimesCells) {
  analog::Netlist nl = sram::build_block(block_2x1());
  const CompiledMarch compiled =
      compile_march(nl, block_2x1(), march::test_11n(), {1.8, 25e-9});
  EXPECT_EQ(compiled.cycles.size(), 11u * 2u);
  EXPECT_DOUBLE_EQ(compiled.period, 25e-9);
  EXPECT_DOUBLE_EQ(compiled.t_stop, 22 * 25e-9);
}

TEST(CompileMarch, ScheduleFollowsElementOrder) {
  analog::Netlist nl = sram::build_block(block_2x1());
  const CompiledMarch compiled =
      compile_march(nl, block_2x1(), march::test_11n(), {1.8, 25e-9});
  // Element 0 (*(w0)) ascending: addr 0 then addr 1.
  EXPECT_EQ(compiled.cycles[0].row, 0);
  EXPECT_EQ(compiled.cycles[1].row, 1);
  EXPECT_FALSE(compiled.cycles[0].operation.is_read);
  // Element 3 (v(r0,w1,r1)) descends.
  const CycleInfo& c = compiled.cycles[2 + 4 + 6];  // first cycle of element 3
  EXPECT_EQ(c.element, 3);
  EXPECT_EQ(c.row, 1);
  EXPECT_TRUE(c.operation.is_read);
}

TEST(CompileMarch, SampleTimeLandsLateInCycle) {
  analog::Netlist nl = sram::build_block(block_2x1());
  const CompiledMarch compiled =
      compile_march(nl, block_2x1(), march::test_11n(), {1.8, 100e-9});
  EXPECT_NEAR(compiled.sample_time(0), 90e-9, 1e-12);
  EXPECT_NEAR(compiled.sample_time(3), 300e-9 + 90e-9, 1e-12);
}

TEST(CompileMarch, PrechargePulsesEveryCycle) {
  analog::Netlist nl = sram::build_block(block_2x1());
  const double T = 100e-9;
  compile_march(nl, block_2x1(), march::test_11n(), {1.8, T});
  const auto& pre = source(nl, sram::BlockSources::pre);
  for (int cycle = 0; cycle < 4; ++cycle) {
    const double t0 = cycle * T;
    EXPECT_LT(pre.wave.value(t0 + 0.15 * T), 0.2) << cycle;  // active low
    EXPECT_GT(pre.wave.value(t0 + 0.6 * T), 1.6) << cycle;   // released
  }
}

TEST(CompileMarch, WordlineEnableWindowInsideCycle) {
  analog::Netlist nl = sram::build_block(block_2x1());
  const double T = 100e-9;
  compile_march(nl, block_2x1(), march::test_11n(), {1.8, T});
  const auto& wlen = source(nl, sram::BlockSources::wlen_b);
  EXPECT_GT(wlen.wave.value(0.10 * T), 1.6);  // disabled during precharge
  EXPECT_LT(wlen.wave.value(0.60 * T), 0.2);  // enabled mid-cycle
  EXPECT_GT(wlen.wave.value(0.99 * T), 1.6);  // disabled at the boundary
}

TEST(CompileMarch, WriteEnableOnlyOnWriteCycles) {
  analog::Netlist nl = sram::build_block(block_2x1());
  const double T = 100e-9;
  const CompiledMarch compiled =
      compile_march(nl, block_2x1(), march::test_11n(), {1.8, T});
  const auto& we = source(nl, sram::BlockSources::we);
  for (std::size_t k = 0; k < 6; ++k) {
    const double mid = k * T + 0.6 * T;
    if (compiled.cycles[k].operation.is_read) {
      EXPECT_LT(we.wave.value(mid), 0.2) << "cycle " << k;
    } else {
      EXPECT_GT(we.wave.value(mid), 1.6) << "cycle " << k;
    }
  }
}

TEST(CompileMarch, AddressBitTracksRow) {
  analog::Netlist nl = sram::build_block(block_2x1());
  const double T = 100e-9;
  const CompiledMarch compiled =
      compile_march(nl, block_2x1(), march::test_11n(), {1.8, T});
  const auto& a0 = source(nl, sram::BlockSources::addr(0));
  for (std::size_t k = 0; k < compiled.cycles.size(); ++k) {
    const double mid = k * T + 0.5 * T;
    const double level = a0.wave.value(mid);
    if (compiled.cycles[k].row == 1) {
      EXPECT_GT(level, 1.6) << "cycle " << k;
    } else {
      EXPECT_LT(level, 0.2) << "cycle " << k;
    }
  }
}

TEST(CompileMarch, DataLinesComplementaryOnWrites) {
  analog::Netlist nl = sram::build_block(block_2x1());
  const double T = 100e-9;
  const CompiledMarch compiled =
      compile_march(nl, block_2x1(), march::test_11n(), {1.8, T});
  const auto& din = source(nl, sram::BlockSources::din);
  const auto& dinb = source(nl, sram::BlockSources::dinb);
  for (std::size_t k = 0; k < compiled.cycles.size(); ++k) {
    if (compiled.cycles[k].operation.is_read) continue;
    const double mid = k * T + 0.6 * T;
    const double d = din.wave.value(mid);
    const double db = dinb.wave.value(mid);
    EXPECT_NEAR(d + db, 1.8, 0.05) << "cycle " << k;
    if (compiled.cycles[k].operation.value) {
      EXPECT_GT(d, 1.6);
    } else {
      EXPECT_LT(d, 0.2);
    }
  }
}

TEST(CompileMarch, VddScalesWithCondition) {
  analog::Netlist nl = sram::build_block(block_2x1());
  compile_march(nl, block_2x1(), march::test_11n(), {1.0, 100e-9});
  EXPECT_DOUBLE_EQ(source(nl, sram::BlockSources::vdd).wave.value(1e-9), 1.0);
}

TEST(CompileMarch, RejectsBadInput) {
  analog::Netlist nl = sram::build_block(block_2x1());
  EXPECT_THROW(compile_march(nl, block_2x1(), march::test_11n(), {0.0, 25e-9}),
               Error);
  march::MarchTest empty;
  EXPECT_THROW(compile_march(nl, block_2x1(), empty, {1.8, 25e-9}), Error);
}

TEST(SeedBlockState, AcceptsAnyBlock) {
  for (int rows : {2, 4}) {
    sram::BlockSpec spec;
    spec.rows = rows;
    spec.cols = 2;
    const analog::Netlist nl = sram::build_block(spec);
    analog::Simulator sim(nl);
    EXPECT_NO_THROW(seed_block_state(sim, nl, spec, 1.8));
  }
}

}  // namespace
}  // namespace memstress::tester
