#include "tester/ate.hpp"

#include <gtest/gtest.h>

#include "defects/defect.hpp"
#include "march/library.hpp"
#include "util/error.hpp"

namespace memstress::tester {
namespace {

sram::BlockSpec block_2x1() {
  sram::BlockSpec spec;
  spec.rows = 2;
  spec.cols = 1;
  return spec;
}

// The analog runs below are the expensive integration checks of the whole
// electrical stack (block + stimulus + simulator + strobe); each takes a
// few hundred milliseconds.

TEST(RunMarchAnalog, FaultFreeBlockPassesAtNominal) {
  const auto run = run_march_analog(sram::build_block(block_2x1()), block_2x1(),
                                    march::test_11n(), {1.8, 25e-9});
  EXPECT_TRUE(run.log.passed()) << run.log.summary(march::test_11n());
  EXPECT_GT(run.sim_stats.steps, 0);
}

TEST(RunMarchAnalog, FaultFreeBlockPassesAtVlv) {
  const auto run = run_march_analog(sram::build_block(block_2x1()), block_2x1(),
                                    march::test_11n(), {1.0, 100e-9});
  EXPECT_TRUE(run.log.passed()) << run.log.summary(march::test_11n());
}

TEST(RunMarchAnalog, HardCellBridgeFailsEverywhereItIsTested) {
  analog::Netlist nl = sram::build_block(block_2x1());
  defects::inject(nl, defects::representative_bridge(
                          layout::BridgeCategory::CellTrueFalse, block_2x1(),
                          100.0));
  const auto run = run_march_analog(std::move(nl), block_2x1(),
                                    march::test_11n(), {1.8, 25e-9});
  EXPECT_FALSE(run.log.passed());
}

TEST(RunMarchAnalog, HighOhmicBridgeEscapesNominalButFailsVlv) {
  // The core VLV result on the real electrical stack: a 90 kOhm
  // cell-internal bridge passes the nominal-voltage test and fails at 1 V.
  const auto defect = defects::representative_bridge(
      layout::BridgeCategory::CellTrueFalse, block_2x1(), 90e3);
  analog::Netlist at_nominal = sram::build_block(block_2x1());
  defects::inject(at_nominal, defect);
  EXPECT_TRUE(run_march_analog(std::move(at_nominal), block_2x1(),
                               march::test_11n(), {1.8, 25e-9})
                  .log.passed());
  analog::Netlist at_vlv = sram::build_block(block_2x1());
  defects::inject(at_vlv, defect);
  EXPECT_FALSE(run_march_analog(std::move(at_vlv), block_2x1(),
                                march::test_11n(), {1.0, 100e-9})
                   .log.passed());
}

TEST(RunMarchAnalog, FourRowTwoColumnBlockPasses) {
  // Exercises the NAND2 row decoder (2 address bits), the column selects,
  // and both columns' sense paths in one transient. MATS+ keeps the cost
  // at ~1 s.
  sram::BlockSpec spec;
  spec.rows = 4;
  spec.cols = 2;
  const auto run = run_march_analog(sram::build_block(spec), spec,
                                    march::mats_plus(), {1.8, 25e-9});
  EXPECT_TRUE(run.log.passed()) << run.log.summary(march::mats_plus());
}

TEST(RunMarchAnalog, FourRowBlockLocalizesAnInjectedFault) {
  // The decoder must route the failure to exactly the defective cell —
  // row 2 of 4 — proving per-row addressing works electrically.
  sram::BlockSpec spec;
  spec.rows = 4;
  spec.cols = 1;
  analog::Netlist nl = sram::build_block(spec);
  defects::Defect d;
  d.kind = defects::DefectKind::Bridge;
  d.net_a = "cell2_0_t";
  d.net_b = "cell2_0_f";
  d.resistance = 100.0;
  defects::inject(nl, d);
  const auto run = run_march_analog(std::move(nl), spec, march::mats_plus_plus(),
                                    {1.8, 25e-9});
  ASSERT_FALSE(run.log.passed());
  const auto cells = run.log.failing_cells();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(*cells.begin(), std::make_pair(2, 0));
}

TEST(RunMarchAnalog, TraceContainsOutputsAndExtras) {
  AteOptions options;
  options.extra_record = {"bl0", "wl0"};
  const auto run = run_march_analog(sram::build_block(block_2x1()), block_2x1(),
                                    march::mats_plus_plus(), {1.8, 25e-9},
                                    options);
  EXPECT_NO_THROW(run.trace.signal_index("q0"));
  EXPECT_NO_THROW(run.trace.signal_index("bl0"));
  EXPECT_NO_THROW(run.trace.signal_index("wl0"));
}

TEST(RunMarchAnalog, RejectsCoarseResolution) {
  AteOptions options;
  options.steps_per_cycle = 4;
  EXPECT_THROW(run_march_analog(sram::build_block(block_2x1()), block_2x1(),
                                march::test_11n(), {1.8, 25e-9}, options),
               Error);
}

TEST(RunShmoo, OracleDrivesTheGrid) {
  // Shmoo plumbing is tested against a synthetic oracle (no analog cost):
  // fails below 1.2 V or faster than 16 ns — a VLV+at-speed compound.
  const auto oracle = [](const sram::StressPoint& at) {
    return at.vdd >= 1.2 && at.period >= 16e-9;
  };
  const std::vector<double> vdds{1.0, 1.4, 1.8};
  const std::vector<double> periods{10e-9, 20e-9, 30e-9};
  const ShmooGrid grid = run_shmoo(oracle, vdds, periods);
  EXPECT_EQ(grid.at(0, 1), ShmooCell::Fail);  // 1.0 V
  EXPECT_EQ(grid.at(1, 1), ShmooCell::Pass);  // 1.4 V / 20 ns
  EXPECT_EQ(grid.at(2, 0), ShmooCell::Fail);  // 10 ns
  EXPECT_EQ(grid.fail_count(), 3u + 2u);      // bottom row + left column
}

TEST(StandardAxes, CoverThePaperRanges) {
  const auto vdds = standard_shmoo_vdds();
  EXPECT_NEAR(vdds.front(), 0.8, 1e-9);
  EXPECT_NEAR(vdds.back(), 2.2, 1e-9);
  // Must include the four test voltages (on the 0.1 V grid; Vmin/Vmax land
  // between points, which is how real shmoos are read too).
  const auto periods = standard_shmoo_periods();
  EXPECT_EQ(periods.front(), 10e-9);
  EXPECT_EQ(periods.back(), 100e-9);
  // The tester floor of 15 ns and the 16/17 ns boundary of Fig. 9.
  EXPECT_NE(std::find(periods.begin(), periods.end(), 15e-9), periods.end());
  EXPECT_NE(std::find(periods.begin(), periods.end(), 16e-9), periods.end());
  EXPECT_NE(std::find(periods.begin(), periods.end(), 17e-9), periods.end());
}

}  // namespace
}  // namespace memstress::tester
