// Shared fixture pieces for the memstressd tests: a synthetic
// detectability database (no analog simulation — the server tests exercise
// sockets and threading, not solver physics) and a service/server factory
// over it. The synthetic rule is the same split as the estimator tests:
// VLV catches bridges up to 1 kOhm, Vmax catches opens.
#pragma once

#include <memory>
#include <string>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "defects/sampler.hpp"
#include "server/client.hpp"
#include "estimator/coverage.hpp"
#include "estimator/detectability.hpp"
#include "layout/sram_layout.hpp"
#include "server/server.hpp"
#include "server/service.hpp"

namespace memstress::server {

/// Every bridge/open category at the five standard-leg stress conditions,
/// so any handler (including the schedule optimizer's Monte-Carlo sampler)
/// finds an entry for whatever defect it draws.
inline estimator::DetectabilityDb synthetic_server_db() {
  estimator::DetectabilityDb db;
  const auto add = [&db](defects::DefectKind kind, int category, double r,
                         double vdd, double period, bool detected) {
    estimator::DbEntry e;
    e.kind = kind;
    e.category = category;
    e.resistance = r;
    e.vdd = vdd;
    e.period = period;
    e.detected = detected;
    db.add(e);
  };
  for (int cat = 0; cat <= static_cast<int>(layout::BridgeCategory::Other);
       ++cat)
    for (const double r : {20.0, 1e3, 10e3, 90e3})
      for (const double vdd : {1.0, 1.65, 1.8, 1.95})
        for (const double period : {100e-9, 25e-9, 15e-9})
          add(defects::DefectKind::Bridge, cat, r, vdd, period,
              vdd < 1.2 || r <= 1e3);
  for (int cat = 0; cat <= static_cast<int>(layout::OpenCategory::Other);
       ++cat)
    for (const double r : {1e4, 1e6, 1e8})
      for (const double vdd : {1.0, 1.65, 1.8, 1.95})
        for (const double period : {100e-9, 25e-9, 15e-9})
          add(defects::DefectKind::Open, cat, r, vdd, period, vdd > 1.9);
  return db;
}

inline std::shared_ptr<const MemstressService> make_test_service(
    ServiceInfo info = {}) {
  auto db = std::make_shared<const estimator::DetectabilityDb>(
      synthetic_server_db());
  const auto model = layout::generate_sram_layout(8, 8);
  sram::BlockSpec block;
  block.rows = 2;
  block.cols = 1;
  defects::FabModel fab;
  defects::DefectSampler sampler(
      defects::aggregate_sites(layout::extract_bridges(model),
                               layout::extract_opens(model)),
      fab, block);
  return std::make_shared<const MemstressService>(
      std::move(db), estimator::PopulationModel::calibrate(), fab,
      std::move(sampler), info);
}

/// A started server on an ephemeral loopback port plus the service behind
/// it, so tests can compute expected payloads with direct library calls.
struct TestServer {
  std::shared_ptr<const MemstressService> service;
  Server server;

  explicit TestServer(ServerConfig config = {})
      : service(make_test_service(config.service_info())),
        server(std::move(config), service) {
    server.start();
  }

  ClientConfig client_config() const {
    ClientConfig config;
    config.port = server.port();
    return config;
  }

  /// The exact response line the server must produce for `line` — same
  /// handlers, same serializer, no socket.
  std::string expected_response(const std::string& line) const {
    const Request request = parse_request(line);
    return make_response(request.id, service->handle(request, {}));
  }
};

/// Minimal raw TCP connection for tests that need to break the protocol in
/// ways Client refuses to (half-closed writes, unterminated frames).
struct RawConnection {
  int fd = -1;

  explicit RawConnection(int port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd);
      fd = -1;
    }
  }
  ~RawConnection() {
    if (fd >= 0) ::close(fd);
  }
  bool connected() const { return fd >= 0; }
  void finish_writing() const { ::shutdown(fd, SHUT_WR); }
};

/// In-process replica of Server::process_line for the fuzzer and the
/// regression-corpus replay: same parse -> handle_serialized -> envelope
/// path, same structured error mapping, no sockets and no chaos site. Any
/// exception escaping THIS function is a protocol-stack bug by definition —
/// that is exactly the oracle the fuzz harness enforces.
inline std::string handle_line_inprocess(const MemstressService& service,
                                         const std::string& line,
                                         int timeout_ms = 2000) {
  Request request;
  try {
    request = parse_request(line);
  } catch (const ProtocolError& e) {
    return make_error(0, "parse_error", std::string("request:1: ") + e.what());
  }
  RequestContext context;
  context.deadline = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(timeout_ms);
  try {
    const std::string payload = service.handle_serialized(request, context);
    if (context.past_deadline())
      return make_error(request.id, "timeout", "request:1: deadline of " +
                                                   std::to_string(timeout_ms) +
                                                   " ms exceeded");
    return make_response_from_payload(request.id, payload);
  } catch (const ProtocolError& e) {
    return make_error(request.id, "bad_request",
                      std::string("request:1: ") + e.what());
  } catch (const CancelledError& e) {
    return make_error(request.id, "shutting_down",
                      std::string("request:1: ") + e.what());
  } catch (const Error& e) {
    return make_error(request.id, "internal",
                      std::string("request:1: ") + e.what());
  }
}

}  // namespace memstress::server
