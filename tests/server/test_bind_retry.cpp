// ServerConfig::bind_retries: a restart on a pinned port must survive the
// EADDRINUSE window left by a predecessor (or by the kernel still tearing
// the old listener down) instead of failing the deploy.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "server/client.hpp"
#include "server_test_util.hpp"

namespace memstress::server {
namespace {

/// A plain listener (no SO_REUSEADDR sharing semantics matter here — two
/// *listeners* on one port always collide) occupying a loopback port.
struct PortHog {
  int fd = -1;
  int port = 0;

  PortHog() {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    ::listen(fd, 1);
    socklen_t len = sizeof addr;
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    port = ntohs(addr.sin_port);
  }
  ~PortHog() { release(); }
  void release() {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
};

TEST(ServerBindRetry, RapidStopStartLoopOnAPinnedPortSucceeds) {
  // Learn a free port, then rapid-cycle servers on it. Each restart races
  // the previous listener's teardown; the bounded retry absorbs it.
  int pinned = 0;
  {
    TestServer probe;
    pinned = probe.server.port();
    probe.server.stop();
  }
  for (int cycle = 0; cycle < 4; ++cycle) {
    ServerConfig config;
    config.port = pinned;
    config.workers = 1;
    TestServer fixture(config);
    Client client(fixture.client_config());
    EXPECT_NO_THROW(client.request("health")) << "cycle " << cycle;
    fixture.server.stop();
  }
}

TEST(ServerBindRetry, WaitsOutAnOccupiedPortThenBinds) {
  PortHog hog;
  ServerConfig config;
  config.port = hog.port;
  config.workers = 1;
  config.bind_retries = 100;
  config.bind_retry_ms = 20;
  auto service = make_test_service(config.service_info());
  Server server(config, service);

  // Release the port from another thread mid-retry; start() must pick it
  // up on a later attempt instead of having failed on the first.
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    hog.release();
  });
  server.start();
  releaser.join();
  EXPECT_EQ(server.port(), config.port);
  ClientConfig client_config;
  client_config.port = server.port();
  Client client(client_config);
  EXPECT_NO_THROW(client.request("health"));
  server.stop();
}

TEST(ServerBindRetry, ZeroRetriesFailsFastOnAnOccupiedPort) {
  PortHog hog;
  ServerConfig config;
  config.port = hog.port;
  config.bind_retries = 0;
  auto service = make_test_service(config.service_info());
  Server server(config, service);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(server.start(), Error);
  EXPECT_LT(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count(),
            1.0);
}

}  // namespace
}  // namespace memstress::server
