// Technology backends through the serving stack: health reports the served
// technology, requests carrying a "technology" param are validated against
// the database, the shard codec round-trips the STT-MRAM and undervolt
// parameter packs, and a coordinator over a real fork()ed worker fleet
// reproduces the single-node CSV byte for byte for both new backends.
//
// fork() discipline (same as test_coordinator_chaos): every LocalWorkerFleet
// is constructed while this process is single-threaded.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "estimator/detectability.hpp"
#include "march/library.hpp"
#include "server/coordinator.hpp"
#include "server/fleet.hpp"
#include "server/shard_codec.hpp"
#include "server_test_util.hpp"
#include "tech/model.hpp"

namespace memstress::server {
namespace {

estimator::CharacterizeSpec tech_spec(tech::Technology technology) {
  estimator::CharacterizeSpec spec = tech::default_characterize_spec(technology);
  spec.block.rows = 2;
  spec.block.cols = 1;
  spec.vdds = {1.0, 1.8};
  spec.periods = {100e-9};
  spec.bridge_resistances = {1e3};
  spec.open_resistances = {1e6};
  spec.gox_vbds = {1.7};
  if (technology == tech::Technology::SttMram)
    spec.mtj.resistances = {1.0e3, 3.2e3, 1.2e4};
  spec.threads = 1;
  return spec;
}

/// A service over a really-characterized database for the given backend
/// (the closed-form ones are milliseconds even in a test). STT-MRAM gets
/// the MTJ-mode sampler; the SRAM-grid technologies the IFA-site one.
std::shared_ptr<const MemstressService> make_tech_service(
    tech::Technology technology) {
  auto db = std::make_shared<const estimator::DetectabilityDb>(
      estimator::characterize(tech_spec(technology)));
  sram::BlockSpec block;
  block.rows = 2;
  block.cols = 1;
  if (technology == tech::Technology::SttMram) {
    defects::DefectSampler sampler(defects::MtjFabModel{}, block);
    return std::make_shared<const MemstressService>(
        std::move(db), estimator::PopulationModel::calibrate(),
        defects::FabModel{}, std::move(sampler), ServiceInfo{},
        defects::MtjFabModel{});
  }
  const auto model = layout::generate_sram_layout(8, 8);
  defects::DefectSampler sampler(
      defects::aggregate_sites(layout::extract_bridges(model),
                               layout::extract_opens(model)),
      defects::FabModel{}, block);
  return std::make_shared<const MemstressService>(
      std::move(db), estimator::PopulationModel::calibrate(),
      defects::FabModel{}, std::move(sampler));
}

TEST(TechServing, HealthReportsTheServedTechnology) {
  EXPECT_EQ(make_test_service()->health().at("technology").as_string(),
            "sram6t");
  EXPECT_EQ(make_tech_service(tech::Technology::SttMram)
                ->health()
                .at("technology")
                .as_string(),
            "stt_mram");
  EXPECT_EQ(make_tech_service(tech::Technology::Undervolt)
                ->health()
                .at("technology")
                .as_string(),
            "undervolt");
}

TEST(TechServing, TechnologyParamIsValidatedAgainstTheDatabase) {
  const auto service = make_tech_service(tech::Technology::SttMram);
  Json params = Json::object();
  Json geometry = Json::object();
  geometry.set("x_rows", Json(128));
  geometry.set("y_columns", Json(32));
  geometry.set("bits_per_word", Json(4));
  params.set("geometry", std::move(geometry));
  const std::string baseline = service->coverage(params).dump();

  // A matching technology param changes nothing.
  params.set("technology", Json("stt_mram"));
  EXPECT_EQ(service->coverage(params).dump(), baseline);

  // A mismatching one is a structured bad_request, not a wrong answer.
  params.set("technology", Json("sram6t"));
  EXPECT_THROW(service->coverage(params), ProtocolError);
  const std::string response = handle_line_inprocess(
      *service,
      "{\"v\":1,\"id\":7,\"type\":\"coverage\",\"params\":"
      "{\"technology\":\"sram6t\"}}");
  EXPECT_NE(response.find("bad_request"), std::string::npos) << response;
  EXPECT_NE(response.find("stt_mram"), std::string::npos) << response;

  // Garbage names are rejected by the same validation.
  params.set("technology", Json("flash"));
  EXPECT_THROW(service->coverage(params), ProtocolError);
}

TEST(TechServing, DetectabilityServesMtjFaultClasses) {
  const auto service = make_tech_service(tech::Technology::SttMram);
  Json params = Json::object();
  params.set("kind", Json("mtj"));
  params.set("category", Json("retention"));
  params.set("resistance", Json(1.0e3));
  params.set("vdd", Json(1.0));
  params.set("period", Json(100e-9));
  const Json result = service->detectability(params);
  EXPECT_EQ(result.at("detected").as_bool(),
            service->db().detected(
                defects::DefectKind::Mtj,
                static_cast<int>(defects::MtjFaultCategory::Retention), 1.0e3,
                1.0, 100e-9));
  // A thin pinholed barrier loses data over the pause: detected.
  EXPECT_TRUE(result.at("detected").as_bool());

  // The MTJ kind is meaningless against an SRAM database: the category
  // exists, but no entry does, which surfaces as a structured error.
  const auto sram_service = make_test_service();
  EXPECT_THROW(sram_service->detectability(params), Error);
}

TEST(TechServing, ShardCodecRoundTripsTheParameterPacks) {
  for (const auto technology :
       {tech::Technology::SttMram, tech::Technology::Undervolt}) {
    const estimator::CharacterizeSpec spec = tech_spec(technology);
    const Json wire =
        Json::parse(characterize_spec_to_json(spec).dump());
    const estimator::CharacterizeSpec decoded =
        characterize_spec_from_json(wire);
    EXPECT_EQ(decoded.technology, technology);
    EXPECT_EQ(estimator::spec_fingerprint(decoded),
              estimator::spec_fingerprint(spec))
        << tech::technology_name(technology);
  }
}

TEST(TechServing, ShardCodecRejectsAForeignParameterPack) {
  // An MTJ pack on a sram6t spec is a contradiction, not a silently
  // dropped extra — the worker must refuse before sweeping anything.
  Json wire = Json::parse(
      characterize_spec_to_json(tech_spec(tech::Technology::SttMram)).dump());
  wire.set("technology", Json("sram6t"));
  EXPECT_THROW(characterize_spec_from_json(wire), ProtocolError);

  Json uv_wire = Json::parse(
      characterize_spec_to_json(tech_spec(tech::Technology::Undervolt)).dump());
  uv_wire.set("technology", Json("stt_mram"));
  EXPECT_THROW(characterize_spec_from_json(uv_wire), ProtocolError);
}

TEST(TechServing, CharacterizeRangeShardMatchesTheLibrary) {
  // The worker half, handler-direct: verdict codes for a shard of the
  // STT-MRAM grid must equal the library's characterize_range.
  const auto service = make_test_service();  // worker db is irrelevant
  const estimator::CharacterizeSpec spec = tech_spec(tech::Technology::SttMram);
  const std::size_t grid_size = estimator::characterize_grid(spec).size();
  Json params = Json::object();
  params.set("spec", characterize_spec_to_json(spec));
  params.set("begin", Json(std::size_t{0}));
  params.set("end", Json(grid_size));
  const Json result = service->characterize_range(params, RequestContext{});
  const auto verdicts = estimator::characterize_range(spec, 0, grid_size);
  ASSERT_EQ(result.at("verdicts").items().size(), verdicts.size());
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    const int code =
        static_cast<int>(result.at("verdicts").items()[i].as_number());
    EXPECT_EQ(code, verdicts[i].detected ? 1 : 0) << "grid point " << i;
  }
}

TEST(TechServing, FleetMergesByteIdenticalCsvForEveryBackend) {
  for (const auto technology :
       {tech::Technology::SttMram, tech::Technology::Undervolt}) {
    const estimator::CharacterizeSpec spec = tech_spec(technology);
    const std::string baseline = estimator::characterize(spec).to_csv();
    ServerConfig worker_config;
    worker_config.request_timeout_ms = 120000;
    for (const int workers : {1, 2, 4}) {
      LocalWorkerFleet fleet(workers, [] { return make_test_service(); },
                             worker_config);
      CoordinatorConfig config;
      config.workers = fleet.endpoints();
      config.characterize_shard_points = 4;
      config.shard_timeout_ms = 120000;
      config.backoff_initial_ms = 2;
      config.backoff_max_ms = 20;
      config.probe_attempts = 2;
      Coordinator coordinator(config);
      const estimator::DetectabilityDb db = coordinator.characterize(spec);
      EXPECT_EQ(db.to_csv(), baseline)
          << tech::technology_name(technology) << " with " << workers
          << " workers changed the merged bytes";
      EXPECT_EQ(db.technology(), technology);
      EXPECT_EQ(db.fingerprint(), estimator::spec_fingerprint(spec));
      EXPECT_TRUE(db.quarantine().empty());
      EXPECT_TRUE(coordinator.stats().complete());
    }
  }
}

}  // namespace
}  // namespace memstress::server
