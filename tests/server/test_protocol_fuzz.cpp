// Fuzz-style hardening for the wire protocol: random garbage, truncated
// documents, pathological framing. The invariant everywhere is "structured
// ProtocolError or clean frame status, never a crash, hang or unbounded
// buffer" — the parser and LineReader face the network, so every byte
// sequence is a legal input.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "server/protocol.hpp"
#include "util/rng.hpp"

namespace memstress::server {
namespace {

/// A connected socketpair whose ends close on scope exit. LineReader uses
/// recv(), so tests feed it through a real socket, not a pipe.
struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() {
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  }
  ~SocketPair() {
    close_writer();
    if (fds[0] >= 0) ::close(fds[0]);
  }
  void close_writer() {
    if (fds[1] >= 0) ::close(fds[1]);
    fds[1] = -1;
  }
  int reader() const { return fds[0]; }
  int writer() const { return fds[1]; }
};

TEST(ProtocolFuzz, RandomBytesNeverCrashTheParser) {
  Rng rng(0xf00df00d);
  for (int round = 0; round < 500; ++round) {
    const std::size_t length = rng.below(64);
    std::string line;
    for (std::size_t i = 0; i < length; ++i)
      line.push_back(static_cast<char>(rng.below(256)));
    try {
      const Request request = parse_request(line);
      // Random bytes that happen to parse must still satisfy the envelope.
      EXPECT_FALSE(request.type.empty());
    } catch (const ProtocolError&) {
      // The expected outcome for almost every round.
    }
  }
}

TEST(ProtocolFuzz, EveryPrefixOfAValidRequestIsHandled) {
  const std::string full =
      "{\"v\":1,\"id\":3,\"type\":\"coverage\",\"params\":"
      "{\"geometry\":{\"x_rows\":128},\"vlv_period\":1e-07}}";
  EXPECT_NO_THROW(parse_request(full));
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const std::string prefix = full.substr(0, cut);
    EXPECT_THROW(parse_request(prefix), ProtocolError) << "cut=" << cut;
  }
}

TEST(ProtocolFuzz, DeepNestingDoesNotOverflowTheStack) {
  std::string deep;
  for (int i = 0; i < 2000; ++i) deep += "[";
  try {
    Json::parse(deep);
    FAIL() << "unterminated arrays must not parse";
  } catch (const ProtocolError&) {
    // Either a depth limit or an unterminated-document error is fine; what
    // matters is that we got here instead of a segfault.
  }
}

TEST(ProtocolFuzz, InvalidUtf8VariantsAllRejected) {
  const std::vector<std::string> bad = {
      "\"\xed\xa0\x80\"",       // UTF-8 encoded surrogate half
      "\"\xf4\x90\x80\x80\"",   // beyond U+10FFFF
      "\"\xe2\x82\"",           // truncated 3-byte sequence
      "\"\x80\"",               // bare continuation byte
      "\"\xf8\x88\x80\x80\x80\"",  // 5-byte form (never valid)
  };
  for (const std::string& text : bad)
    EXPECT_THROW(Json::parse(text), ProtocolError) << text;
}

TEST(ProtocolFuzz, LineReaderReassemblesInterleavedPartialWrites) {
  SocketPair sockets;
  const std::string first = "{\"v\":1,\"type\":\"health\"}";
  const std::string second = "{\"v\":1,\"type\":\"metrics\"}";
  std::thread writer([&] {
    const std::string stream = first + "\n" + second + "\n";
    // Dribble the two frames across byte-sized writes landing mid-token.
    for (const char byte : stream) {
      ASSERT_EQ(::send(sockets.writer(), &byte, 1, 0), 1);
    }
    sockets.close_writer();
  });
  LineReader reader(sockets.reader());
  Frame frame = reader.read_line();
  ASSERT_EQ(frame.status, Frame::Status::Line);
  EXPECT_EQ(frame.text, first);
  frame = reader.read_line();
  ASSERT_EQ(frame.status, Frame::Status::Line);
  EXPECT_EQ(frame.text, second);
  EXPECT_EQ(reader.read_line().status, Frame::Status::Eof);
  writer.join();
}

TEST(ProtocolFuzz, LineReaderReportsTruncatedFinalFrame) {
  SocketPair sockets;
  write_all(sockets.writer(), "{\"v\":1,\"type\":\"health\"}\n{\"v\":1,\"ty");
  sockets.close_writer();
  LineReader reader(sockets.reader());
  EXPECT_EQ(reader.read_line().status, Frame::Status::Line);
  const Frame tail = reader.read_line();
  EXPECT_EQ(tail.status, Frame::Status::Eof);
  EXPECT_EQ(tail.text, "{\"v\":1,\"ty");  // truncated frame surfaces to caller
}

TEST(ProtocolFuzz, LineReaderBoundsOversizedFrames) {
  SocketPair sockets;
  const std::size_t limit = 256;
  std::thread writer([&] {
    // 4x the limit without a newline: the reader must give up long before
    // the writer finishes, never buffering the whole line.
    const std::string blob(1024, 'x');
    ::send(sockets.writer(), blob.data(), blob.size(), MSG_NOSIGNAL);
    sockets.close_writer();
  });
  LineReader reader(sockets.reader(), limit);
  EXPECT_EQ(reader.read_line().status, Frame::Status::Overflow);
  writer.join();
}

TEST(ProtocolFuzz, ResponseParserRejectsStructuralLies) {
  EXPECT_THROW(parse_response("{\"v\":1,\"id\":1}"), ProtocolError);
  EXPECT_THROW(parse_response("{\"v\":1,\"id\":1,\"ok\":true}"),
               ProtocolError);
  EXPECT_THROW(parse_response("{\"v\":1,\"id\":1,\"ok\":false}"),
               ProtocolError);
  EXPECT_THROW(
      parse_response("{\"v\":1,\"id\":1,\"ok\":false,\"error\":\"nope\"}"),
      ProtocolError);
  EXPECT_THROW(parse_response("null"), ProtocolError);
}

}  // namespace
}  // namespace memstress::server
