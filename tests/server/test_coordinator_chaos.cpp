// CoordinatorChaos: the distributed determinism contract under fire.
//
// The merged CSV / study tallies must be byte-identical to a single-node
// run at any worker count, with workers SIGKILLed mid-run, with a worker
// dead before the run starts, with chaos injection active in every worker
// — and when retries are exhausted the run must degrade to quarantined
// points instead of wrong bytes. The fleet is real fork()ed server
// processes, so the failure paths exercised are the real socket-level ones
// (ECONNREFUSED, ECONNRESET mid-frame), not mocks.
//
// fork() discipline: every fleet is constructed while this process is
// single-threaded (coordinator dispatcher threads and killer threads are
// joined before each test returns), which keeps the suite TSan-clean.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "estimator/detectability.hpp"
#include "march/library.hpp"
#include "server/coordinator.hpp"
#include "server/fleet.hpp"
#include "server_test_util.hpp"
#include "study/study.hpp"
#include "util/chaos.hpp"
#include "util/metrics.hpp"

namespace memstress::server {
namespace {

estimator::CharacterizeSpec tiny_spec() {
  estimator::CharacterizeSpec spec;
  spec.block.rows = 2;
  spec.block.cols = 1;
  spec.test = march::test_11n();
  spec.vdds = {1.0, 1.8};
  spec.periods = {100e-9};
  spec.bridge_resistances = {1e3};
  spec.open_resistances = {1e6};
  spec.gox_vbds = {1.7};
  spec.threads = 1;
  return spec;
}

/// Single-node oracle, computed once (the grid is tiny but each point is a
/// real transient simulation).
const std::string& baseline_csv() {
  static const std::string csv = estimator::characterize(tiny_spec()).to_csv();
  return csv;
}

/// Worker-side server config: shard requests run real simulations, so the
/// per-request deadline must comfortably exceed a whole-grid shard.
ServerConfig worker_config() {
  ServerConfig config;
  config.request_timeout_ms = 120000;
  return config;
}

CoordinatorConfig coord_config(const LocalWorkerFleet& fleet,
                               int shard_points) {
  CoordinatorConfig config;
  config.workers = fleet.endpoints();
  config.characterize_shard_points = shard_points;
  config.study_shard_devices = 47;
  config.shard_timeout_ms = 120000;
  config.backoff_initial_ms = 2;
  config.backoff_max_ms = 20;
  config.probe_attempts = 2;
  return config;
}

defects::DefectSampler study_sampler() {
  const auto model = layout::generate_sram_layout(8, 8);
  sram::BlockSpec block;
  block.rows = 2;
  block.cols = 1;
  return defects::DefectSampler(
      defects::aggregate_sites(layout::extract_bridges(model),
                               layout::extract_opens(model)),
      defects::FabModel{}, block);
}

study::StudyConfig study_config() {
  study::StudyConfig config;
  config.device_count = 600;
  config.seed = 77;
  config.threads = 1;
  return config;
}

TEST(CoordinatorChaos, CharacterizeByteIdenticalAcrossWorkerCounts) {
  const std::string& baseline = baseline_csv();
  for (const int workers : {1, 2, 4}) {
    LocalWorkerFleet fleet(workers, [] { return make_test_service(); },
                           worker_config());
    Coordinator coordinator(coord_config(fleet, 4));
    const estimator::DetectabilityDb db = coordinator.characterize(tiny_spec());
    EXPECT_EQ(db.to_csv(), baseline)
        << workers << " workers changed the merged bytes";
    EXPECT_TRUE(db.quarantine().empty());
    EXPECT_EQ(db.fingerprint(), estimator::spec_fingerprint(tiny_spec()));
    EXPECT_TRUE(coordinator.stats().complete());
    EXPECT_EQ(coordinator.stats().workers_dead, 0);
  }
}

TEST(CoordinatorChaos, StudyTalliesIdenticalAcrossFleetShapes) {
  const study::StudyConfig config = study_config();
  const estimator::DetectabilityDb db = synthetic_server_db();
  const study::StudyResult baseline =
      study::run_study(config, db, study_sampler());
  for (const int workers : {1, 2, 4}) {
    LocalWorkerFleet fleet(workers, [] { return make_test_service(); },
                           worker_config());
    Coordinator coordinator(coord_config(fleet, 4));
    const study::StudyResult result = coordinator.run_study(config, db);
    EXPECT_EQ(result.summary(), baseline.summary())
        << workers << " workers changed the study tallies";
    EXPECT_EQ(result.devices, baseline.devices);
    EXPECT_EQ(result.venn.total(), baseline.venn.total());
    EXPECT_TRUE(coordinator.stats().complete());
  }
}

TEST(CoordinatorChaos, SigkilledWorkerMidRunStillMergesIdenticalBytes) {
  metrics::set_enabled(true);
  const std::string& baseline = baseline_csv();
  LocalWorkerFleet fleet(2, [] { return make_test_service(); },
                         worker_config());
  Coordinator coordinator(coord_config(fleet, 2));

  metrics::Counter& dispatched = metrics::counter("coord.shards_dispatched");
  const long long before = dispatched.value();
  // SIGKILL worker 0 as soon as both dispatchers have shards in flight —
  // mid-simulation, mid-connection, exactly like a crashed host.
  std::thread killer([&] {
    while (dispatched.value() - before < 2)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    fleet.kill(0);
  });
  const estimator::DetectabilityDb db = coordinator.characterize(tiny_spec());
  killer.join();
  metrics::set_enabled(false);

  EXPECT_EQ(db.to_csv(), baseline) << "mid-run SIGKILL changed the bytes";
  EXPECT_TRUE(coordinator.stats().complete());
  EXPECT_EQ(coordinator.stats().workers_quarantined, 1);
  EXPECT_EQ(coordinator.stats().workers_dead, 1);
}

TEST(CoordinatorChaos, DeadWorkerShardsRequeueOntoSurvivors) {
  const std::string& baseline = baseline_csv();
  LocalWorkerFleet fleet(2, [] { return make_test_service(); },
                         worker_config());
  Coordinator coordinator(coord_config(fleet, 4));
  // Kill before the run: worker 0's dispatcher picks a shard, hits
  // ECONNREFUSED, and must requeue it onto the survivor — deterministically.
  fleet.kill(0);
  const estimator::DetectabilityDb db = coordinator.characterize(tiny_spec());
  EXPECT_EQ(db.to_csv(), baseline);
  EXPECT_TRUE(coordinator.stats().complete());
  EXPECT_GE(coordinator.stats().shards_requeued, 1);
  EXPECT_EQ(coordinator.stats().workers_dead, 1);
}

TEST(CoordinatorChaos, WorkerDyingWithTheLastShardStillCompletes) {
  metrics::set_enabled(true);
  const std::string& baseline = baseline_csv();
  LocalWorkerFleet fleet(2, [] { return make_test_service(); },
                         worker_config());
  // One shard covering the whole grid: with hedging on, the idle second
  // dispatcher duplicates it, so by the time we kill a worker *both* hold
  // the final shard — whichever dies, the run must still complete.
  CoordinatorConfig config = coord_config(fleet, 1 << 20);
  Coordinator coordinator(config);

  metrics::Counter& dispatched = metrics::counter("coord.shards_dispatched");
  const long long before = dispatched.value();
  std::thread killer([&] {
    while (dispatched.value() - before < 2)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    fleet.kill(0);
  });
  const estimator::DetectabilityDb db = coordinator.characterize(tiny_spec());
  killer.join();
  metrics::set_enabled(false);

  EXPECT_EQ(db.to_csv(), baseline);
  EXPECT_TRUE(coordinator.stats().complete());
  EXPECT_EQ(coordinator.stats().workers_dead, 1);
  EXPECT_GE(coordinator.stats().shards_hedged, 1);
}

TEST(CoordinatorChaos, StudyCompletesWithADeadWorker) {
  const study::StudyConfig config = study_config();
  const estimator::DetectabilityDb db = synthetic_server_db();
  const study::StudyResult baseline =
      study::run_study(config, db, study_sampler());
  LocalWorkerFleet fleet(3, [] { return make_test_service(); },
                         worker_config());
  Coordinator coordinator(coord_config(fleet, 4));
  fleet.kill(1);
  const study::StudyResult result = coordinator.run_study(config, db);
  EXPECT_EQ(result.summary(), baseline.summary());
  EXPECT_TRUE(coordinator.stats().complete());
  EXPECT_GE(coordinator.stats().shards_requeued, 1);
  EXPECT_EQ(coordinator.stats().workers_dead, 1);
}

TEST(CoordinatorChaos, ChaosInjectionDoesNotChangeTheMergedBytes) {
  // Single-node oracle with the same chaos stream the workers will see:
  // chaos verdicts are keyed on the *global* grid index, so shard layout
  // cannot move them.
  chaos::configure(0.5, 11);
  const estimator::DetectabilityDb expected =
      estimator::characterize(tiny_spec());
  chaos::disable();

  LocalWorkerFleet fleet(2,
                         [] {
                           // Runs in the worker child: chaos active both at
                           // the request boundary (server.handle) and inside
                           // the sweep (characterize.point).
                           chaos::configure(0.5, 11);
                           return make_test_service();
                         },
                         worker_config());
  CoordinatorConfig config = coord_config(fleet, 3);
  config.max_shard_attempts = 30;  // rejected requests re-roll per attempt
  Coordinator coordinator(config);
  const estimator::DetectabilityDb db = coordinator.characterize(tiny_spec());

  EXPECT_EQ(db.to_csv(), expected.to_csv())
      << "chaos injection changed the merged bytes";
  ASSERT_EQ(db.quarantine().size(), expected.quarantine().size());
  for (std::size_t i = 0; i < db.quarantine().size(); ++i)
    EXPECT_EQ(db.quarantine()[i].describe(),
              expected.quarantine()[i].describe());
  EXPECT_TRUE(coordinator.stats().complete());
}

TEST(CoordinatorChaos, ExhaustedRetriesDegradeToUnresolvedQuarantine) {
  LocalWorkerFleet fleet(2,
                         [] {
                           // Every request fails with the structured
                           // "injected" error — shards can never resolve.
                           chaos::configure(1.0, 3);
                           return make_test_service();
                         },
                         worker_config());
  CoordinatorConfig config = coord_config(fleet, 8);
  config.max_shard_attempts = 2;
  config.hedge = false;
  Coordinator coordinator(config);
  const estimator::DetectabilityDb db = coordinator.characterize(tiny_spec());

  const std::size_t points = estimator::characterize_grid(tiny_spec()).size();
  EXPECT_EQ(db.size(), 0u);
  ASSERT_EQ(db.quarantine().size(), points);
  for (const estimator::QuarantineEntry& q : db.quarantine())
    EXPECT_EQ(q.reason.rfind("unresolved shard:", 0), 0u) << q.reason;
  EXPECT_FALSE(coordinator.stats().complete());
  ASSERT_FALSE(coordinator.stats().unresolved.empty());
  for (const UnresolvedShard& u : coordinator.stats().unresolved)
    EXPECT_GE(u.attempts, 2) << "shard " << u.shard;

  // The study path degrades the same way: every device unresolved, every
  // tally empty rather than wrong.
  const study::StudyResult result =
      coordinator.run_study(study_config(), synthetic_server_db());
  EXPECT_EQ(result.devices, 0);
  EXPECT_EQ(result.defective, 0);
  EXPECT_FALSE(coordinator.stats().complete());
}

}  // namespace
}  // namespace memstress::server
