// Distributed building blocks below the chaos suite: the shard codecs, the
// `characterize_range` / `study_shard` handlers against direct library
// calls, the db_crc guard and the coordinator's configuration validation.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "march/library.hpp"
#include "server/coordinator.hpp"
#include "server/shard_codec.hpp"
#include "server_test_util.hpp"
#include "study/study.hpp"
#include "util/checkpoint.hpp"

namespace memstress::server {
namespace {

estimator::CharacterizeSpec tiny_spec() {
  estimator::CharacterizeSpec spec;
  spec.block.rows = 2;
  spec.block.cols = 1;
  spec.test = march::test_11n();
  spec.vdds = {1.0, 1.8};
  spec.periods = {100e-9};
  spec.bridge_resistances = {1e3};
  spec.open_resistances = {1e6};
  spec.gox_vbds = {1.7};
  spec.threads = 1;
  return spec;
}

TEST(ShardCodec, CharacterizeSpecRoundTripsWithEqualFingerprint) {
  estimator::CharacterizeSpec spec = tiny_spec();
  spec.solver = analog::SolverMode::Exact;
  spec.max_attempts = 5;
  const Json json = characterize_spec_to_json(spec);
  // Through the real wire representation, not just the document model.
  const estimator::CharacterizeSpec back =
      characterize_spec_from_json(Json::parse(json.dump()));
  EXPECT_EQ(estimator::spec_fingerprint(back),
            estimator::spec_fingerprint(spec));
  EXPECT_EQ(back.test.name, spec.test.name);
  EXPECT_EQ(back.vdds, spec.vdds);
  EXPECT_EQ(back.open_resistances, spec.open_resistances);
  EXPECT_EQ(back.max_attempts, spec.max_attempts);
  EXPECT_EQ(back.threads, spec.threads);
  ASSERT_TRUE(back.solver.has_value());
  EXPECT_EQ(*back.solver, analog::SolverMode::Exact);
  EXPECT_TRUE(back.checkpoint_path.empty());
}

TEST(ShardCodec, StudyConfigRoundTrips) {
  study::StudyConfig config;
  config.device_count = 1234;
  config.seed = 424242;
  config.threads = 2;
  config.area_per_cell_um2 = 0.9;
  const study::StudyConfig back =
      study_config_from_json(Json::parse(study_config_to_json(config).dump()));
  EXPECT_EQ(back.device_count, config.device_count);
  EXPECT_EQ(back.seed, config.seed);
  EXPECT_EQ(back.threads, config.threads);
  EXPECT_EQ(back.area_per_cell_um2, config.area_per_cell_um2);
  EXPECT_EQ(back.slow_period, config.slow_period);
  EXPECT_TRUE(back.checkpoint_path.empty());
}

TEST(ShardCodec, RejectsMissingAndOutOfRangeFields) {
  const Json good = characterize_spec_to_json(tiny_spec());
  EXPECT_THROW(characterize_spec_from_json(Json::object()), ProtocolError);

  Json bad_rows = Json::parse(good.dump());
  bad_rows.set("rows", Json(100000));
  EXPECT_THROW(characterize_spec_from_json(bad_rows), ProtocolError);

  Json empty_axis = Json::parse(good.dump());
  empty_axis.set("vdds", Json::array());
  EXPECT_THROW(characterize_spec_from_json(empty_axis), ProtocolError);

  Json bad_study = study_config_to_json(study::StudyConfig{});
  bad_study.set("device_count", Json(0));
  EXPECT_THROW(study_config_from_json(bad_study), ProtocolError);
}

TEST(ShardHandlers, CharacterizeRangeMatchesTheLibrary) {
  const auto service = make_test_service();
  const estimator::CharacterizeSpec spec = tiny_spec();
  const std::size_t points = estimator::characterize_grid(spec).size();
  ASSERT_GT(points, 2u);

  // Two shards covering the grid, executed by the handler; the direct
  // library sweep is the oracle.
  const std::vector<estimator::PointVerdict> direct =
      estimator::characterize_range(spec, 0, points);
  std::vector<long long> codes;
  for (const std::size_t begin : {std::size_t{0}, points / 2}) {
    const std::size_t end = begin == 0 ? points / 2 : points;
    Json params = Json::object();
    params.set("spec", characterize_spec_to_json(spec));
    params.set("begin", Json(begin));
    params.set("end", Json(end));
    const Json result = service->characterize_range(params, {});
    EXPECT_EQ(result.int_or("begin", -1), static_cast<long long>(begin));
    EXPECT_EQ(result.int_or("end", -1), static_cast<long long>(end));
    EXPECT_EQ(result.int_or("grid", 0), static_cast<long long>(points));
    for (const Json& v : result.at("verdicts").items())
      codes.push_back(static_cast<long long>(v.as_number()));
  }
  ASSERT_EQ(codes.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i)
    EXPECT_EQ(codes[i], direct[i].quarantined ? 2
                        : direct[i].detected  ? 1
                                              : 0)
        << "verdict mismatch at grid point " << i;
}

TEST(ShardHandlers, StudyShardMatchesTheLibraryAndGuardsTheDb) {
  const auto service = make_test_service();
  study::StudyConfig config;
  config.device_count = 64;
  config.seed = 7;
  config.threads = 1;
  const Json config_json = study_config_to_json(config);

  char crc[16];
  std::snprintf(crc, sizeof crc, "%08x",
                checkpoint::crc32(synthetic_server_db().to_csv()));

  Json params = Json::object();
  params.set("config", config_json);
  params.set("begin", Json(16));
  params.set("end", Json(48));
  params.set("db_crc", Json(std::string(crc)));
  const Json result = service->study_shard(params, {});
  const std::vector<Json>& masks = result.at("masks").items();
  ASSERT_EQ(masks.size(), 32u);

  // The same range straight from the library, with an identically
  // constructed sampler (make_test_service's construction is
  // deterministic).
  const auto model = layout::generate_sram_layout(8, 8);
  sram::BlockSpec block;
  block.rows = 2;
  block.cols = 1;
  defects::DefectSampler sampler(
      defects::aggregate_sites(layout::extract_bridges(model),
                               layout::extract_opens(model)),
      defects::FabModel{}, block);
  const std::vector<int> direct =
      study::run_study_range(config, synthetic_server_db(), sampler, 16, 48);
  for (std::size_t i = 0; i < direct.size(); ++i)
    EXPECT_EQ(static_cast<int>(masks[i].as_number()), direct[i]);

  // Wrong database fingerprint: structured rejection, not wrong numbers.
  params.set("db_crc", Json(std::string("00000000")));
  EXPECT_THROW(service->study_shard(params, {}), ProtocolError);
}

TEST(ShardHandlers, RejectsBadShardBounds) {
  const auto service = make_test_service();
  Json params = Json::object();
  params.set("config", study_config_to_json(study::StudyConfig{}));
  params.set("begin", Json(10));
  params.set("end", Json(5));
  EXPECT_THROW(service->study_shard(params, {}), ProtocolError);
  params.set("begin", Json(0));
  params.set("end", Json(10 * 1000 * 1000));
  EXPECT_THROW(service->study_shard(params, {}), ProtocolError);
}

TEST(Coordinator, ValidatesItsConfiguration) {
  EXPECT_THROW(Coordinator(CoordinatorConfig{}), Error);  // no workers

  CoordinatorConfig bad_port;
  bad_port.workers.push_back(WorkerEndpoint{"127.0.0.1", 0});
  EXPECT_THROW(Coordinator{bad_port}, Error);

  CoordinatorConfig bad_shards;
  bad_shards.workers.push_back(WorkerEndpoint{"127.0.0.1", 1234});
  bad_shards.characterize_shard_points = 0;
  EXPECT_THROW(Coordinator{bad_shards}, Error);

  CoordinatorConfig ok;
  ok.workers.push_back(WorkerEndpoint{"127.0.0.1", 1234});
  EXPECT_NO_THROW(Coordinator{ok});
}

}  // namespace
}  // namespace memstress::server
