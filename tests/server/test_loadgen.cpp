// Tests for the load-generation toolkit (server/loadgen.hpp): zipf
// sampling, open-loop pacing, per-type latency accounting — and the exact
// JSON schema of TrafficReport, which BENCH_JSON/SOAK_JSON trailers embed.
// The schema pin is deliberate: dashboards and trend scripts parse these
// trailers, so a field rename must fail a test, not a downstream parser.
#include "server/loadgen.hpp"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace memstress::server {
namespace {

TEST(LoadgenZipf, PrefersLowIndices) {
  ZipfSampler zipf(100, 1.0);
  Rng rng(42);
  std::vector<long long> counts(zipf.size(), 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.sample(rng)];
  // With s = 1 over 100 items, index 0 carries ~19% of the mass; the tail
  // item ~0.2%. Generous bounds keep this deterministic-seed test stable.
  EXPECT_GT(counts[0], 3000);
  EXPECT_GT(counts[0], counts[10] * 5);
  EXPECT_GT(counts[10], counts[99]);
}

TEST(LoadgenZipf, ZeroExponentIsUniform) {
  ZipfSampler zipf(20, 0.0);
  Rng rng(7);
  std::vector<long long> counts(zipf.size(), 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_GT(counts[i], 700) << "index " << i;
    EXPECT_LT(counts[i], 1300) << "index " << i;
  }
}

TEST(LoadgenZipf, DeterministicForAGivenSeed) {
  ZipfSampler zipf(64, 1.2);
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(zipf.sample(a), zipf.sample(b));
}

TEST(LoadgenZipf, SingleItemAlwaysSamplesZero) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.sample(rng), 0u);
}

TEST(LoadgenPacer, DeadlinesAreEvenlySpaced) {
  const auto start = std::chrono::steady_clock::now();
  Pacer pacer(1000.0, start);  // one request per millisecond
  const auto d0 = pacer.next_deadline();
  const auto d1 = pacer.next_deadline();
  const auto d2 = pacer.next_deadline();
  EXPECT_EQ(d0, start);
  EXPECT_EQ(d1 - d0, std::chrono::milliseconds(1));
  EXPECT_EQ(d2 - d1, std::chrono::milliseconds(1));
  EXPECT_EQ(pacer.issued(), 3);
}

TEST(LoadgenPacer, BehindGrowsWhenScheduleIsInThePast) {
  // A schedule that started one second ago at 1000 req/s is ~1000 requests
  // behind "now" before anything was issued.
  const auto start =
      std::chrono::steady_clock::now() - std::chrono::seconds(1);
  Pacer pacer(1000.0, start);
  EXPECT_GE(pacer.behind().count(), 900);
}

TEST(LoadgenQuantile, MatchesBenchServerConvention) {
  std::vector<double> sorted = {0.001, 0.002, 0.003, 0.004};
  EXPECT_DOUBLE_EQ(exact_quantile_ms(sorted, 0.5), 0.003 * 1e3);
  EXPECT_DOUBLE_EQ(exact_quantile_ms(sorted, 0.99), 0.004 * 1e3);
  EXPECT_DOUBLE_EQ(exact_quantile_ms({}, 0.5), 0.0);
}

TEST(LoadgenRecorder, SeparatesTypesAndCountsErrors) {
  LatencyRecorder recorder;
  recorder.record("dpm", 0.010);
  recorder.record("dpm", 0.020);
  recorder.record("health", 0.001);
  recorder.record_error("health", "busy");
  recorder.record_error("health", "busy");
  recorder.record_error("health", "timeout");

  const TrafficReport report = recorder.report();
  ASSERT_EQ(report.types.size(), 2u);
  EXPECT_EQ(report.types[0].type, "dpm");  // sorted order
  EXPECT_EQ(report.types[0].count, 2);
  EXPECT_EQ(report.types[0].errors, 0);
  EXPECT_EQ(report.types[1].type, "health");
  EXPECT_EQ(report.types[1].count, 1);
  EXPECT_EQ(report.types[1].errors, 3);
  EXPECT_EQ(report.types[1].errors_by_code.at("busy"), 2);
  EXPECT_EQ(report.types[1].errors_by_code.at("timeout"), 1);
  EXPECT_EQ(report.total_count(), 3);
  EXPECT_EQ(report.total_errors(), 3);
}

TEST(LoadgenRecorder, MirrorsIntoMetricsHistogramsWhenPrefixed) {
  metrics::reset();
  metrics::set_enabled(true);
  LatencyRecorder recorder("soak.latency.");
  recorder.record("coverage", 0.25);
  recorder.record("coverage", 0.5);
  const metrics::RunReport report = metrics::collect();
  bool found = false;
  for (const auto& h : report.histograms) {
    if (h.name == "soak.latency.coverage") {
      found = true;
      EXPECT_EQ(h.stats.count, 2);
    }
  }
  EXPECT_TRUE(found);
  metrics::set_enabled(false);
  metrics::reset();
}

// The pinned schema. Samples are chosen binary-exact (powers of two in
// seconds) so every derived millisecond value renders without floating
// noise; if this test fails, a BENCH_JSON/SOAK_JSON consumer somewhere
// breaks too — change them together, deliberately.
TEST(LoadgenReport, JsonSchemaIsPinned) {
  LatencyRecorder recorder;
  recorder.record("dpm", 0.5);
  recorder.record("dpm", 0.25);
  recorder.record("dpm", 1.0);
  recorder.record("dpm", 2.0);
  recorder.record("health", 0.000244140625);  // 2^-12 s
  recorder.record_error("health", "busy");
  recorder.record_error("health", "busy");
  recorder.record_error("health", "timeout");

  const std::string expected =
      "{\"dpm\":{\"count\":4,\"errors\":0,\"errors_by_code\":{},"
      "\"mean_ms\":937.5,\"p50_ms\":1000,\"p99_ms\":2000,\"p999_ms\":2000,"
      "\"max_ms\":2000},"
      "\"health\":{\"count\":1,\"errors\":3,"
      "\"errors_by_code\":{\"busy\":2,\"timeout\":1},"
      "\"mean_ms\":0.244140625,\"p50_ms\":0.244140625,"
      "\"p99_ms\":0.244140625,\"p999_ms\":0.244140625,"
      "\"max_ms\":0.244140625}}";
  EXPECT_EQ(recorder.report().to_json().dump(), expected);
}

TEST(LoadgenSlo, ViolationsNameTheTypeAndThreshold) {
  LatencyRecorder recorder;
  recorder.record("dpm", 0.5);
  recorder.record("dpm", 2.0);
  recorder.record("health", 0.001);
  recorder.record_error("health", "busy");
  const TrafficReport report = recorder.report();

  SloSpec slo;
  slo.p99_ms = 1500.0;
  slo.max_error_fraction = 0.25;
  const SloVerdict verdict = report.evaluate(slo);
  EXPECT_FALSE(verdict.pass);
  ASSERT_EQ(verdict.violations.size(), 2u);
  EXPECT_EQ(verdict.violations[0], "dpm: p99 2000.000ms > 1500.000ms");
  EXPECT_EQ(verdict.violations[1],
            "health: error fraction 0.5000 > 0.2500");

  // Disabled thresholds (<= 0) never fire.
  const SloVerdict lax = report.evaluate(SloSpec{});
  EXPECT_TRUE(lax.pass);
  EXPECT_TRUE(lax.violations.empty());
}

}  // namespace
}  // namespace memstress::server
