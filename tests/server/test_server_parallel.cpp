// Concurrency suite for memstressd: many client threads hammering one
// server, with every response checked byte-for-byte against a direct
// library call. Runs under check_parallel, so a -DMEMSTRESS_SANITIZE=thread
// build makes this the TSan gate for the server's threading (acceptor,
// bounded queue, worker pool, shared immutable DetectabilityDb).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "server/client.hpp"
#include "server_test_util.hpp"
#include "util/env.hpp"
#include "util/parallel.hpp"

namespace memstress::server {
namespace {

/// A deterministic request mix: cheap lookups, the full Table-1 estimator,
/// and the Monte-Carlo schedule search (seeded, so byte-stable).
std::vector<std::string> request_mix() {
  return {
      "{\"v\":1,\"id\":1,\"type\":\"health\"}",
      "{\"v\":1,\"id\":2,\"type\":\"dpm\",\"params\":"
      "{\"yield\":0.93,\"defect_coverage\":0.97}}",
      "{\"v\":1,\"id\":3,\"type\":\"detectability\",\"params\":"
      "{\"kind\":\"open\",\"category\":\"wordline\","
      "\"resistance\":1000000,\"vdd\":1.95,\"period\":2.5e-08}}",
      "{\"v\":1,\"id\":4,\"type\":\"coverage\",\"params\":"
      "{\"geometry\":{\"x_rows\":256,\"y_columns\":64,\"bits_per_word\":8}}}",
      "{\"v\":1,\"id\":5,\"type\":\"schedule\",\"params\":"
      "{\"yield\":0.92,\"monte_carlo_defects\":120,\"seed\":3}}",
      "{\"v\":1,\"id\":6,\"type\":\"coverage\",\"params\":"
      "{\"geometry\":{\"x_rows\":64,\"y_columns\":16,\"bits_per_word\":4,"
      "\"z_blocks\":2},\"vlv_period\":2e-07}}",
  };
}

/// N client threads, each walking the mix from a different offset on its
/// own connection, all against a `workers`-wide pool.
void hammer(int workers, int client_threads, int rounds) {
  ServerConfig config;
  config.workers = workers;
  config.queue_depth = 64;  // every connection queues; no busy responses
  TestServer fixture(config);

  const std::vector<std::string> lines = request_mix();
  std::vector<std::string> expected;
  for (const std::string& line : lines)
    expected.push_back(fixture.expected_response(line));

  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < client_threads; ++t) {
    clients.emplace_back([&, t] {
      Client client(fixture.client_config());
      for (int round = 0; round < rounds; ++round) {
        const std::size_t pick = (t + round) % lines.size();
        if (client.roundtrip(lines[pick]) != expected[pick])
          mismatches.fetch_add(1);
      }
    });
  }
  for (auto& thread : clients) thread.join();
  EXPECT_EQ(mismatches.load(), 0)
      << workers << " workers, " << client_threads << " clients";
}

TEST(ServerParallel, SingleWorkerSerializesCorrectly) { hammer(1, 4, 6); }

TEST(ServerParallel, TwoWorkersStayByteIdentical) { hammer(2, 6, 6); }

TEST(ServerParallel, EightWorkersStayByteIdentical) { hammer(8, 8, 6); }

TEST(ServerParallel, WorkerCountFollowsThreadEnvWhenUnset) {
  // ServerConfig.workers == 0 defers to util/parallel's resolution, which
  // honours MEMSTRESS_THREADS — the same knob the batch layers use.
  ::setenv("MEMSTRESS_THREADS", "2", 1);
  ServerConfig config;
  config.workers = 0;
  TestServer fixture(config);
  EXPECT_EQ(fixture.server.config().workers, 2);
  ::unsetenv("MEMSTRESS_THREADS");
  Client client(fixture.client_config());
  const std::string line = "{\"v\":1,\"id\":8,\"type\":\"health\"}";
  EXPECT_EQ(client.roundtrip(line), fixture.expected_response(line));
}

TEST(ServerParallel, ConcurrentConnectionsShareOneDatabase) {
  // The service — and through it the immutable DetectabilityDb — is shared
  // by every worker; 8 threads reading the same entries must agree.
  ServerConfig config;
  config.workers = 8;
  TestServer fixture(config);
  const std::string line =
      "{\"v\":1,\"id\":1,\"type\":\"detectability\",\"params\":"
      "{\"kind\":\"bridge\",\"category\":\"bitline-bitline\","
      "\"resistance\":20,\"vdd\":1.0,\"period\":1e-07}}";
  const std::string expected = fixture.expected_response(line);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 8; ++t)
    clients.emplace_back([&] {
      Client client(fixture.client_config());
      for (int i = 0; i < 10; ++i)
        if (client.roundtrip(line) != expected) mismatches.fetch_add(1);
    });
  for (auto& thread : clients) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace memstress::server
