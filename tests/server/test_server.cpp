// End-to-end daemon tests over a real loopback socket: request routing,
// byte-identity with direct library calls, structured errors for every
// failure class, backpressure, and the drain-on-shutdown contract.
#include "server/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "server/client.hpp"
#include "server_test_util.hpp"
#include "util/cancel.hpp"
#include "util/chaos.hpp"

namespace memstress::server {
namespace {

TEST(ServerLoopback, HealthReportsTheDatabase) {
  TestServer fixture;
  EXPECT_GT(fixture.server.port(), 0);
  Client client(fixture.client_config());
  const Json health = client.request("health");
  EXPECT_EQ(health.at("status").as_string(), "ok");
  EXPECT_EQ(health.at("protocol_version").as_number(),
            static_cast<double>(kProtocolVersion));
  EXPECT_EQ(health.at("db_entries").as_number(),
            static_cast<double>(fixture.service->db().size()));
}

TEST(ServerLoopback, ResponsesAreByteIdenticalToDirectCalls) {
  TestServer fixture;
  Client client(fixture.client_config());
  const std::vector<std::string> lines = {
      "{\"v\":1,\"id\":1,\"type\":\"coverage\",\"params\":"
      "{\"geometry\":{\"x_rows\":128,\"y_columns\":32,\"bits_per_word\":4}}}",
      "{\"v\":1,\"id\":2,\"type\":\"dpm\",\"params\":"
      "{\"yield\":0.95,\"defect_coverage\":0.99}}",
      "{\"v\":1,\"id\":3,\"type\":\"detectability\",\"params\":"
      "{\"kind\":\"bridge\",\"category\":\"cell-true-false\","
      "\"resistance\":1000,\"vdd\":1.0,\"period\":1e-07}}",
      "{\"v\":1,\"id\":4,\"type\":\"schedule\",\"params\":"
      "{\"yield\":0.91,\"monte_carlo_defects\":200,\"seed\":7}}",
      "{\"v\":1,\"id\":5,\"type\":\"health\"}",
  };
  for (const std::string& line : lines)
    EXPECT_EQ(client.roundtrip(line), fixture.expected_response(line)) << line;
}

TEST(ServerLoopback, ScheduleIsDeterministicAcrossConnections) {
  TestServer fixture;
  const std::string line =
      "{\"v\":1,\"id\":9,\"type\":\"schedule\",\"params\":"
      "{\"yield\":0.9,\"monte_carlo_defects\":150,\"seed\":11}}";
  Client first(fixture.client_config());
  const std::string first_response = first.roundtrip(line);
  // A worker owns a connection until it closes; release it so a one-worker
  // configuration (this box may resolve to one) can adopt the second client.
  first.disconnect();
  Client second(fixture.client_config());
  EXPECT_EQ(first_response, second.roundtrip(line));
}

TEST(ServerLoopback, ParseErrorsAreRowNumberedPerConnection) {
  TestServer fixture;
  Client client(fixture.client_config());
  Response first = parse_response(client.roundtrip("this is not json"));
  EXPECT_FALSE(first.ok);
  EXPECT_EQ(first.error_code, "parse_error");
  EXPECT_NE(first.error_message.find("request:1:"), std::string::npos)
      << first.error_message;
  // The connection survives a parse error; the next frame is request 2.
  Response second = parse_response(client.roundtrip("{\"v\":9}"));
  EXPECT_EQ(second.error_code, "parse_error");
  EXPECT_NE(second.error_message.find("request:2:"), std::string::npos)
      << second.error_message;
  // And a well-formed request on the same connection still works.
  const std::string good = "{\"v\":1,\"id\":3,\"type\":\"health\"}";
  EXPECT_EQ(client.roundtrip(good), fixture.expected_response(good));
}

TEST(ServerLoopback, BadParamsGetStructuredBadRequest) {
  TestServer fixture;
  Client client(fixture.client_config());
  try {
    client.request("coverage",
                   Json::parse("{\"geometry\":{\"x_rows\":2}}"));
    FAIL() << "expected ServerError";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.code(), "bad_request");
    EXPECT_NE(std::string(e.what()).find("geometry"), std::string::npos);
  }
  EXPECT_THROW(client.request("no_such_type"), ServerError);
}

TEST(ServerLoopback, OversizedFrameAnswersThenCloses) {
  ServerConfig config;
  config.max_frame_bytes = 256;
  TestServer fixture(config);
  Client client(fixture.client_config());
  const std::string huge(1024, 'x');
  const Response response = parse_response(client.roundtrip(huge));
  EXPECT_EQ(response.error_code, "frame_too_large");
  EXPECT_NE(response.error_message.find("256"), std::string::npos);
}

TEST(ServerLoopback, TruncatedFrameAnswersStructurally) {
  TestServer fixture;
  RawConnection raw(fixture.server.port());
  ASSERT_TRUE(raw.connected());
  ASSERT_TRUE(write_all(raw.fd, "{\"v\":1,\"type\":\"heal"));  // no newline
  raw.finish_writing();
  LineReader reader(raw.fd);
  const Frame frame = reader.read_line();
  ASSERT_EQ(frame.status, Frame::Status::Line);
  const Response response = parse_response(frame.text);
  EXPECT_EQ(response.error_code, "parse_error");
  EXPECT_NE(response.error_message.find("truncated frame"), std::string::npos);
}

TEST(ServerLoopback, RequestTimeoutIsReported) {
  ServerConfig config;
  config.request_timeout_ms = 100;
  TestServer fixture(config);
  Client client(fixture.client_config());
  try {
    client.request("sleep", Json::parse("{\"ms\":5000}"));
    FAIL() << "expected ServerError";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.code(), "timeout");
  }
}

TEST(ServerLoopback, ChaosInjectionStaysStructured) {
  TestServer fixture;
  chaos::configure(1.0, 99);
  try {
    Client client(fixture.client_config());
    client.request("health");
    FAIL() << "expected ServerError";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.code(), "injected");
  }
  chaos::disable();
  // The connection and server survive the injected failure.
  Client client(fixture.client_config());
  EXPECT_EQ(client.request("health").at("status").as_string(), "ok");
}

TEST(ServerBackpressure, FullQueueAnswersBusy) {
  ServerConfig config;
  config.workers = 1;
  config.queue_depth = 1;
  TestServer fixture(config);

  // The single worker adopts the first connection at accept time; the
  // second parks in the depth-1 queue; the third must bounce.
  RawConnection occupant(fixture.server.port());
  ASSERT_TRUE(occupant.connected());
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  RawConnection queued(fixture.server.port());
  ASSERT_TRUE(queued.connected());
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  ClientConfig client_config = fixture.client_config();
  client_config.max_retries = 0;  // surface busy instead of retrying
  Client bounced(client_config);
  try {
    bounced.request("health");
    FAIL() << "expected busy";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.code(), "busy");
    EXPECT_NE(std::string(e.what()).find("queue depth 1"), std::string::npos);
  }
}

TEST(ServerBackpressure, ClientRetriesBusyUntilCapacityFrees) {
  ServerConfig config;
  config.workers = 1;
  config.queue_depth = 1;
  TestServer fixture(config);

  auto occupant = std::make_unique<RawConnection>(fixture.server.port());
  ASSERT_TRUE(occupant->connected());
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  auto queued = std::make_unique<RawConnection>(fixture.server.port());
  ASSERT_TRUE(queued->connected());
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // Free both slots while the client is backing off; a later retry lands.
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    occupant.reset();
    queued.reset();
  });
  ClientConfig client_config = fixture.client_config();
  client_config.max_retries = 10;
  Client client(client_config);
  const Json health = client.request("health");
  EXPECT_EQ(health.at("status").as_string(), "ok");
  releaser.join();
}

TEST(ServerShutdown, InFlightRequestFinishesAndRespondsDuringStop) {
  ServerConfig config;
  config.workers = 1;
  TestServer fixture(config);

  std::string response_line;
  std::thread in_flight([&] {
    Client client(fixture.client_config());
    response_line = client.roundtrip(
        "{\"v\":1,\"id\":1,\"type\":\"sleep\",\"params\":{\"ms\":400}}");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  fixture.server.stop();  // must drain, not abandon, the sleeper
  in_flight.join();

  const Response response = parse_response(response_line);
  EXPECT_TRUE(response.ok);
  EXPECT_GE(response.result.at("slept_ms").as_number(), 300.0);
}

TEST(ServerShutdown, QueuedConnectionIsToldShuttingDown) {
  ServerConfig config;
  config.workers = 1;
  config.queue_depth = 4;
  TestServer fixture(config);

  std::thread in_flight([&] {
    Client client(fixture.client_config());
    client.roundtrip(
        "{\"v\":1,\"id\":1,\"type\":\"sleep\",\"params\":{\"ms\":500}}");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  std::string queued_line;
  std::thread queued([&] {
    Client client(fixture.client_config());
    queued_line = client.roundtrip("{\"v\":1,\"id\":2,\"type\":\"health\"}");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  fixture.server.stop();
  in_flight.join();
  queued.join();

  const Response response = parse_response(queued_line);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error_code, "shutting_down");
}

TEST(ServerShutdown, StopIsIdempotentAndWakesIdleConnections) {
  TestServer fixture;
  RawConnection idle(fixture.server.port());
  ASSERT_TRUE(idle.connected());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const auto start = std::chrono::steady_clock::now();
  fixture.server.stop();  // must not wait out the 10 s receive timeout
  fixture.server.stop();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5000);
}

TEST(ServerShutdown, ServeUntilCancelledStopsOnProcessToken) {
  TestServer fixture;
  std::thread tripper([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    cancel::process_token().request_cancel();
  });
  fixture.server.serve_until_cancelled();  // returns only if the token works
  tripper.join();
  cancel::process_token().reset();
  // The port is released: a fresh server can bind and serve again.
  TestServer next;
  Client client(next.client_config());
  EXPECT_EQ(client.request("health").at("status").as_string(), "ok");
}

}  // namespace
}  // namespace memstress::server
