#include "server/protocol.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

namespace memstress::server {
namespace {

// ---------------------------------------------------------------------------
// Json model + deterministic serialization.

TEST(Json, DumpKeepsObjectInsertionOrder) {
  Json doc = Json::object();
  doc.set("zebra", Json(1));
  doc.set("apple", Json(2));
  doc.set("mango", Json(3));
  EXPECT_EQ(doc.dump(), "{\"zebra\":1,\"apple\":2,\"mango\":3}");
}

TEST(Json, DumpParseRoundTripIsByteStable) {
  Json doc = Json::object();
  doc.set("name", Json("memstress"));
  doc.set("ok", Json(true));
  doc.set("nothing", Json(nullptr));
  Json nested = Json::array();
  nested.push_back(Json(1));
  nested.push_back(Json(2.5));
  nested.push_back(Json("x"));
  doc.set("values", std::move(nested));
  const std::string once = doc.dump();
  EXPECT_EQ(Json::parse(once).dump(), once);
}

TEST(Json, FormatNumberPrintsIntegralsWithoutExponent) {
  EXPECT_EQ(format_number(0.0), "0");
  EXPECT_EQ(format_number(42.0), "42");
  EXPECT_EQ(format_number(-7.0), "-7");
  EXPECT_EQ(format_number(9007199254740992.0), "9007199254740992");  // 2^53
}

TEST(Json, FormatNumberUsesShortestRoundTripForReals) {
  for (const double value : {0.1, 2.5e-8, 1.0 / 3.0, 9.1e200}) {
    const std::string text = format_number(value);
    EXPECT_EQ(std::stod(text), value) << text;
  }
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  EXPECT_EQ(format_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(format_number(std::nan("")), "null");
}

TEST(Json, StringEscapesRoundTrip) {
  const std::string nasty = "quote\" backslash\\ newline\n tab\t bell\x07";
  Json doc = Json::object();
  doc.set("s", Json(nasty));
  const Json back = Json::parse(doc.dump());
  EXPECT_EQ(back.at("s").as_string(), nasty);
}

TEST(Json, ParsesUnicodeEscapesAndSurrogatePairs) {
  const Json doc = Json::parse("\"a\\u00e9\\ud83d\\ude00z\"");
  EXPECT_EQ(doc.as_string(), "a\xc3\xa9\xf0\x9f\x98\x80z");
}

TEST(Json, AcceptsValidUtf8Verbatim) {
  const std::string text = "\"gr\xc3\xbc\xc3\x9f dich \xe2\x9c\x93\"";
  EXPECT_EQ(Json::parse(text).as_string(), "gr\xc3\xbc\xc3\x9f dich \xe2\x9c\x93");
}

TEST(Json, TypedAccessorsThrowProtocolErrorOnMismatch) {
  const Json doc = Json::parse("{\"n\":1,\"s\":\"x\"}");
  EXPECT_THROW(doc.at("n").as_string(), ProtocolError);
  EXPECT_THROW(doc.at("s").as_number(), ProtocolError);
  EXPECT_THROW(doc.at("missing"), ProtocolError);
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(Json, FallbackAccessorsTypeCheckWhenPresent) {
  const Json doc = Json::parse("{\"n\":3,\"s\":\"x\"}");
  EXPECT_EQ(doc.number_or("n", 9.0), 3.0);
  EXPECT_EQ(doc.number_or("absent", 9.0), 9.0);
  EXPECT_EQ(doc.string_or("s", "d"), "x");
  EXPECT_EQ(doc.string_or("absent", "d"), "d");
  EXPECT_THROW(doc.number_or("s", 9.0), ProtocolError);
}

TEST(Json, ParseErrorsCarryByteOffset) {
  try {
    Json::parse("{\"a\":1,}");
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos) << e.what();
  }
}

TEST(Json, RejectsTrailingGarbage) {
  EXPECT_THROW(Json::parse("{} {}"), ProtocolError);
  EXPECT_THROW(Json::parse("1 2"), ProtocolError);
  EXPECT_NO_THROW(Json::parse("  {}  "));  // whitespace padding is fine
}

TEST(Json, RejectsInvalidUtf8InStrings) {
  // 0xff can never appear in UTF-8; 0xc3 alone is a dangling lead byte;
  // 0xc0 0xaf is the classic overlong "/" encoding.
  EXPECT_THROW(Json::parse(std::string("\"a\xff\"")), ProtocolError);
  EXPECT_THROW(Json::parse(std::string("\"a\xc3\"")), ProtocolError);
  EXPECT_THROW(Json::parse(std::string("\"\xc0\xaf\"")), ProtocolError);
}

TEST(Json, RejectsLoneSurrogateEscapes) {
  EXPECT_THROW(Json::parse("\"\\ud800\""), ProtocolError);
  EXPECT_THROW(Json::parse("\"\\udc00x\""), ProtocolError);
}

// ---------------------------------------------------------------------------
// Envelope.

TEST(Envelope, ParsesAWellFormedRequest) {
  const Request request = parse_request(
      "{\"v\":1,\"id\":7,\"type\":\"coverage\",\"params\":{\"x\":1}}");
  EXPECT_EQ(request.id, 7);
  EXPECT_EQ(request.type, "coverage");
  EXPECT_EQ(request.params.at("x").as_number(), 1.0);
}

TEST(Envelope, ParamsDefaultToEmptyObject) {
  const Request request = parse_request("{\"v\":1,\"type\":\"health\"}");
  EXPECT_EQ(request.id, 0);
  EXPECT_TRUE(request.params.is_object());
  EXPECT_TRUE(request.params.members().empty());
}

TEST(Envelope, RejectsMissingOrWrongVersion) {
  EXPECT_THROW(parse_request("{\"type\":\"health\"}"), ProtocolError);
  EXPECT_THROW(parse_request("{\"v\":2,\"type\":\"health\"}"), ProtocolError);
  EXPECT_THROW(parse_request("{\"v\":\"1\",\"type\":\"health\"}"),
               ProtocolError);
}

TEST(Envelope, RejectsBadTypeAndParams) {
  EXPECT_THROW(parse_request("{\"v\":1}"), ProtocolError);
  EXPECT_THROW(parse_request("{\"v\":1,\"type\":\"\"}"), ProtocolError);
  EXPECT_THROW(parse_request("{\"v\":1,\"type\":3}"), ProtocolError);
  EXPECT_THROW(parse_request("{\"v\":1,\"type\":\"x\",\"params\":[]}"),
               ProtocolError);
  EXPECT_THROW(parse_request("[1,2,3]"), ProtocolError);
}

TEST(Envelope, ResponseRoundTripSuccess) {
  Json result = Json::object();
  result.set("answer", Json(42));
  const std::string line = make_response(9, result);
  EXPECT_EQ(line, "{\"v\":1,\"id\":9,\"ok\":true,\"result\":{\"answer\":42}}");
  const Response response = parse_response(line);
  EXPECT_TRUE(response.ok);
  EXPECT_EQ(response.id, 9);
  EXPECT_EQ(response.result.at("answer").as_number(), 42.0);
}

TEST(Envelope, ResponseRoundTripError) {
  const std::string line = make_error(3, "busy", "server at capacity");
  const Response response = parse_response(line);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.id, 3);
  EXPECT_EQ(response.error_code, "busy");
  EXPECT_EQ(response.error_message, "server at capacity");
}

TEST(Envelope, SerializationIsDeterministic) {
  Json result = Json::object();
  result.set("dpm", Json(512.80141626230954));
  result.set("n", Json(11000));
  EXPECT_EQ(make_response(1, result), make_response(1, result));
}

}  // namespace
}  // namespace memstress::server
