// Serving-layer result cache and batch requests: repeat traffic must come
// back byte-identical to direct computation (hit, miss or coalesced), the
// single-flight path must compute exactly once under concurrency, and a
// batch frame must carry per-item outcomes without letting one bad
// sub-request poison the rest.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "server/client.hpp"
#include "server_test_util.hpp"
#include "util/metrics.hpp"

namespace memstress::server {
namespace {

const char* kScheduleLine =
    "{\"v\":1,\"id\":1,\"type\":\"schedule\",\"params\":"
    "{\"cells\":4096,\"monte_carlo_defects\":500,\"seed\":42}}";

TEST(ServerCache, RepeatRequestIsServedFromCacheByteIdentical) {
  TestServer fixture;
  const std::string expected = fixture.expected_response(kScheduleLine);
  Client client(fixture.client_config());

  EXPECT_EQ(client.roundtrip(kScheduleLine), expected);  // cold: computes
  EXPECT_EQ(client.roundtrip(kScheduleLine), expected);  // hot: cache hit

  const auto stats = fixture.service->cache().stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);
  fixture.server.stop();
}

TEST(ServerCache, AllCacheableTypesAreCached) {
  TestServer fixture;
  const std::vector<std::string> lines = {
      "{\"v\":1,\"id\":1,\"type\":\"coverage\",\"params\":"
      "{\"geometry\":{\"x_rows\":128,\"y_columns\":32,\"bits_per_word\":4}}}",
      "{\"v\":1,\"id\":2,\"type\":\"dpm\",\"params\":"
      "{\"yield\":0.95,\"defect_coverage\":0.99}}",
      kScheduleLine,
  };
  Client client(fixture.client_config());
  for (const auto& line : lines) {
    const std::string expected = fixture.expected_response(line);
    EXPECT_EQ(client.roundtrip(line), expected);
    EXPECT_EQ(client.roundtrip(line), expected);
  }
  const auto stats = fixture.service->cache().stats();
  EXPECT_EQ(stats.misses, 3);
  EXPECT_EQ(stats.hits, 3);
  fixture.server.stop();
}

TEST(ServerCache, NonCacheableTypesBypassTheCache) {
  TestServer fixture;
  Client client(fixture.client_config());
  const std::string health = "{\"v\":1,\"id\":1,\"type\":\"health\"}";
  EXPECT_EQ(client.roundtrip(health), fixture.expected_response(health));
  EXPECT_EQ(client.roundtrip(health), fixture.expected_response(health));
  const auto stats = fixture.service->cache().stats();
  EXPECT_EQ(stats.misses, 0);
  EXPECT_EQ(stats.hits, 0);
  fixture.server.stop();
}

TEST(ServerCache, CacheEntriesZeroDisablesCachingButStaysCorrect) {
  ServerConfig config;
  config.cache_entries = 0;
  TestServer fixture(config);
  EXPECT_FALSE(fixture.service->cache().cache_enabled());
  const std::string expected = fixture.expected_response(kScheduleLine);
  Client client(fixture.client_config());
  EXPECT_EQ(client.roundtrip(kScheduleLine), expected);
  EXPECT_EQ(client.roundtrip(kScheduleLine), expected);
  const auto stats = fixture.service->cache().stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 0);
  fixture.server.stop();
}

TEST(ServerCache, TinyCapacityEvictsButNeverAnswersWrong) {
  ServerConfig config;
  config.cache_entries = 1;
  TestServer fixture(config);
  const std::string a =
      "{\"v\":1,\"id\":1,\"type\":\"dpm\",\"params\":"
      "{\"yield\":0.95,\"defect_coverage\":0.99}}";
  const std::string b =
      "{\"v\":1,\"id\":2,\"type\":\"dpm\",\"params\":"
      "{\"yield\":0.9,\"defect_coverage\":0.95}}";
  const std::string expected_a = fixture.expected_response(a);
  const std::string expected_b = fixture.expected_response(b);
  Client client(fixture.client_config());
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(client.roundtrip(a), expected_a);
    EXPECT_EQ(client.roundtrip(b), expected_b);
  }
  const auto stats = fixture.service->cache().stats();
  EXPECT_GE(stats.evictions, 1);
  EXPECT_EQ(stats.hits, 0);  // each miss evicted the other entry
  EXPECT_EQ(stats.misses, 8);
  fixture.server.stop();
}

TEST(ServerCache, SingleFlightComputesOnceAcrossThreads) {
  // Service-level, no sockets: K threads ask for the identical schedule
  // concurrently; the cache must run the optimizer exactly once.
  auto service = make_test_service(ServiceInfo{4, 64, 1024, 256});
  const Request request = parse_request(kScheduleLine);
  const std::string expected = service->handle(request, {}).dump();

  constexpr int kThreads = 8;
  std::atomic<int> started{0};
  std::atomic<long> wrong{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      started.fetch_add(1);
      while (started.load() < kThreads) std::this_thread::yield();
      if (service->handle_serialized(request, {}) != expected)
        wrong.fetch_add(1);
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(wrong.load(), 0);
  const auto stats = service->cache().stats();
  EXPECT_EQ(stats.misses, 1) << "exactly one compute for K identical requests";
  EXPECT_EQ(stats.hits + stats.coalesced, kThreads - 1);
}

TEST(ServerCache, MetricsRequestSurfacesCacheCounters) {
  memstress::metrics::set_enabled(true);
  memstress::metrics::reset();
  {
    TestServer fixture;
    Client client(fixture.client_config());
    client.roundtrip(kScheduleLine);
    client.roundtrip(kScheduleLine);
    const Json result = client.request("metrics");
    const Json& counters = result.at("counters");
    ASSERT_NE(counters.find("server.cache_misses"), nullptr);
    EXPECT_EQ(counters.at("server.cache_misses").as_number(), 1.0);
    ASSERT_NE(counters.find("server.cache_hits"), nullptr);
    EXPECT_EQ(counters.at("server.cache_hits").as_number(), 1.0);
    fixture.server.stop();
  }
  memstress::metrics::reset();
  memstress::metrics::set_enabled(false);
}

TEST(ServerCache, HealthReportsCacheConfiguration) {
  TestServer fixture;
  Client client(fixture.client_config());
  const Json health = client.request("health");
  EXPECT_EQ(health.at("cache_entries").as_number(), 1024.0);
  EXPECT_EQ(health.at("batch_max").as_number(), 256.0);
  fixture.server.stop();
}

// ---------------------------------------------------------------------------
// Batch requests.

TEST(ServerBatch, MixedValidAndInvalidItemsGetPositionalOutcomes) {
  TestServer fixture;
  Client client(fixture.client_config());
  Json bad_dpm = Json::object();
  bad_dpm.set("yield", Json(2.0));  // out of range
  bad_dpm.set("defect_coverage", Json(0.99));
  Json good_dpm = Json::object();
  good_dpm.set("yield", Json(0.95));
  good_dpm.set("defect_coverage", Json(0.99));

  const std::vector<BatchOutcome> outcomes = client.batch({
      {"health", Json::object()},
      {"dpm", good_dpm},
      {"dpm", bad_dpm},
      {"no_such_type", Json::object()},
  });
  ASSERT_EQ(outcomes.size(), 4u);
  EXPECT_TRUE(outcomes[0].ok);
  EXPECT_EQ(outcomes[0].result.at("status").as_string(), "ok");
  EXPECT_TRUE(outcomes[1].ok);
  EXPECT_GT(outcomes[1].result.at("dpm").as_number(), 0.0);
  EXPECT_FALSE(outcomes[2].ok);
  EXPECT_EQ(outcomes[2].error_code, "bad_request");
  EXPECT_NE(outcomes[2].error_message.find("request:3:"), std::string::npos)
      << outcomes[2].error_message;
  EXPECT_FALSE(outcomes[3].ok);
  EXPECT_EQ(outcomes[3].error_code, "bad_request");
  EXPECT_NE(outcomes[3].error_message.find("request:4:"), std::string::npos)
      << outcomes[3].error_message;
  fixture.server.stop();
}

TEST(ServerBatch, WireFrameMatchesDirectComputation) {
  TestServer fixture;
  // The issue's literal wire shape: "requests" at the top level.
  const std::string line =
      "{\"v\":1,\"id\":7,\"type\":\"batch\",\"requests\":["
      "{\"type\":\"health\"},"
      "{\"type\":\"dpm\",\"params\":{\"yield\":0.95,"
      "\"defect_coverage\":0.99}},"
      "{\"type\":\"bogus\"}]}";
  Client client(fixture.client_config());
  EXPECT_EQ(client.roundtrip(line), fixture.expected_response(line));
  fixture.server.stop();
}

TEST(ServerBatch, CacheableSubRequestsGoThroughTheCache) {
  TestServer fixture;
  Client client(fixture.client_config());
  Json dpm_params = Json::object();
  dpm_params.set("yield", Json(0.95));
  dpm_params.set("defect_coverage", Json(0.99));
  const std::vector<BatchRequest> requests = {{"dpm", dpm_params},
                                              {"dpm", dpm_params}};
  client.batch(requests);
  client.batch(requests);
  const auto stats = fixture.service->cache().stats();
  // First frame: one miss + one hit (same key twice); second frame: hits.
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 3);
  fixture.server.stop();
}

TEST(ServerBatch, EmptyBatchYieldsEmptyResults) {
  TestServer fixture;
  Client client(fixture.client_config());
  EXPECT_TRUE(client.batch({}).empty());
  fixture.server.stop();
}

TEST(ServerBatch, OversizedBatchIsRejectedWholeWithTheLimit) {
  ServerConfig config;
  config.batch_max = 2;
  TestServer fixture(config);
  Client client(fixture.client_config());
  try {
    client.batch({{"health", Json::object()},
                  {"health", Json::object()},
                  {"health", Json::object()}});
    FAIL() << "expected the oversized batch to be rejected";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.code(), "bad_request");
    EXPECT_NE(std::string(e.what()).find("MEMSTRESS_BATCH_MAX"),
              std::string::npos)
        << e.what();
  }
  fixture.server.stop();
}

TEST(ServerBatch, NestedBatchIsAPerItemError) {
  TestServer fixture;
  Client client(fixture.client_config());
  const std::vector<BatchOutcome> outcomes = client.batch({
      {"health", Json::object()},
      {"batch", Json::object()},
  });
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].ok);
  EXPECT_FALSE(outcomes[1].ok);
  EXPECT_EQ(outcomes[1].error_code, "bad_request");
  EXPECT_NE(outcomes[1].error_message.find("nest"), std::string::npos)
      << outcomes[1].error_message;
  fixture.server.stop();
}

TEST(ServerBatch, MissingRequestsFieldIsABadRequest) {
  TestServer fixture;
  Client client(fixture.client_config());
  try {
    client.request("batch", Json::object());
    FAIL() << "expected missing \"requests\" to be rejected";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.code(), "bad_request");
  }
  fixture.server.stop();
}

// ---------------------------------------------------------------------------
// CacheParallel: the TSan gate. Many clients, repeat + distinct traffic,
// worker pools of 1 / 2 / 8 — every response byte-identical, stats
// conserved.

class CacheParallel : public ::testing::TestWithParam<int> {};

TEST_P(CacheParallel, CachedTrafficIsByteIdenticalAtEveryWorkerCount) {
  ServerConfig config;
  config.workers = GetParam();
  TestServer fixture(config);

  const std::vector<std::string> lines = {
      kScheduleLine,
      "{\"v\":1,\"id\":2,\"type\":\"dpm\",\"params\":"
      "{\"yield\":0.95,\"defect_coverage\":0.99}}",
      "{\"v\":1,\"id\":3,\"type\":\"health\"}",
      "{\"v\":1,\"id\":4,\"type\":\"coverage\",\"params\":"
      "{\"geometry\":{\"x_rows\":128,\"y_columns\":32,\"bits_per_word\":4}}}",
  };
  std::vector<std::string> expected;
  for (const auto& line : lines)
    expected.push_back(fixture.expected_response(line));

  constexpr int kClients = 6;
  constexpr int kRounds = 8;
  std::atomic<long> mismatches{0};
  std::atomic<long> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        Client client(fixture.client_config());
        for (int r = 0; r < kRounds; ++r) {
          const std::size_t pick =
              static_cast<std::size_t>(c + r) % lines.size();
          if (client.roundtrip(lines[pick]) != expected[pick])
            mismatches.fetch_add(1);
        }
      } catch (const Error&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& client : clients) client.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(failures.load(), 0);
  const auto stats = fixture.service->cache().stats();
  // Three distinct cacheable lines in the mix (schedule, dpm, coverage):
  // at most a compute per key — coalescing may fold concurrent cold calls
  // into fewer misses, never more than one per key once warmed.
  EXPECT_GE(stats.misses, 1);
  EXPECT_LE(stats.misses, 3);
  EXPECT_GT(stats.hits + stats.coalesced, 0);
  fixture.server.stop();
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, CacheParallel,
                         ::testing::Values(1, 2, 8));

}  // namespace
}  // namespace memstress::server
