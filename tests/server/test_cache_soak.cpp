// Adversarial traffic against the serving result cache: zipf-skewed key
// reuse with a cache far too small for the working set (constant eviction
// churn), concurrent single-flight misses whose computation FAILS, and the
// same storm replayed at the wire level. Run under
// -DMEMSTRESS_SANITIZE=thread via check_parallel, these are the races the
// soak harness would otherwise only find at 2 a.m.
//
// The invariant throughout: no matter how the cache shuffles hits, misses,
// coalesced waits and evictions, every answer is byte-identical to the
// cache-independent direct computation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "server/client.hpp"
#include "server/loadgen.hpp"
#include "server_test_util.hpp"
#include "util/rng.hpp"

namespace memstress::server {
namespace {

/// 32 distinct dpm requests (cheap to compute, cacheable) — the working
/// set each storm draws from with zipf skew.
std::vector<std::string> dpm_working_set() {
  std::vector<std::string> lines;
  for (int i = 0; i < 32; ++i) {
    char line[160];
    std::snprintf(line, sizeof line,
                  "{\"v\":1,\"id\":%d,\"type\":\"dpm\",\"params\":"
                  "{\"yield\":0.%02d,\"defect_coverage\":0.9%02d}}",
                  i + 1, 50 + i, i);
    lines.emplace_back(line);
  }
  return lines;
}

class CacheAdversarial : public ::testing::TestWithParam<int> {};

TEST_P(CacheAdversarial, ZipfHammerUnderEvictionStaysByteIdentical) {
  const int workers = GetParam();
  // 8 cache entries for a 32-key working set: the tail constantly evicts
  // the head, so hits, misses, coalesced waits and evictions all interleave.
  ServiceInfo info;
  info.cache_entries = 8;
  const auto service = make_test_service(info);

  const std::vector<std::string> lines = dpm_working_set();
  std::vector<std::string> expected;
  std::vector<Request> requests;
  for (const auto& line : lines) {
    const Request request = parse_request(line);
    expected.push_back(service->handle(request, {}).dump());
    requests.push_back(request);
  }

  std::atomic<long> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < workers; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + static_cast<std::uint64_t>(t));
      const ZipfSampler zipf(lines.size(), 1.1);
      for (int i = 0; i < 800; ++i) {
        const std::size_t pick = zipf.sample(rng);
        const std::string payload =
            service->handle_serialized(requests[pick], {});
        if (payload != expected[pick]) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(mismatches.load(), 0);
  const auto stats = service->cache().stats();
  EXPECT_GT(stats.evictions, 0) << "cache was not actually under pressure";
  EXPECT_GT(stats.hits, 0);
}

TEST_P(CacheAdversarial, SingleFlightFailuresSurfaceToEveryWaiter) {
  const int workers = GetParam();
  ServiceInfo info;
  info.cache_entries = 8;
  const auto service = make_test_service(info);

  // A cacheable request whose computation throws (the Monte-Carlo budget
  // guard). Concurrent misses coalesce on the same in-flight slot — every
  // waiter must see the error, and the failure must NOT be cached: valid
  // traffic on the same cache afterwards still computes fine.
  const Request failing = parse_request(
      "{\"v\":1,\"id\":1,\"type\":\"schedule\",\"params\":"
      "{\"cells\":4096,\"monte_carlo_defects\":2000000,\"seed\":1}}");

  std::atomic<long> threw{0};
  std::atomic<long> wrong_outcomes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < workers; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        try {
          (void)service->handle_serialized(failing, {});
          wrong_outcomes.fetch_add(1);  // must never succeed
        } catch (const ProtocolError&) {
          threw.fetch_add(1);
        } catch (...) {
          wrong_outcomes.fetch_add(1);  // wrong exception type
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(wrong_outcomes.load(), 0);
  EXPECT_EQ(threw.load(), static_cast<long>(workers) * 50);

  // The cache is intact for valid traffic after the failure storm.
  const Request valid = parse_request(
      "{\"v\":1,\"id\":2,\"type\":\"dpm\",\"params\":"
      "{\"yield\":0.95,\"defect_coverage\":0.99}}");
  const std::string direct = service->handle(valid, {}).dump();
  EXPECT_EQ(service->handle_serialized(valid, {}), direct);
  EXPECT_EQ(service->handle_serialized(valid, {}), direct);
}

TEST_P(CacheAdversarial, WireLevelZipfStormWithTinyCacheStaysCorrect) {
  const int workers = GetParam();
  ServerConfig config;
  config.workers = workers;
  config.cache_entries = 4;  // even harsher churn at the wire level
  TestServer fixture(config);

  const std::vector<std::string> lines = dpm_working_set();
  std::vector<std::string> expected;
  for (const auto& line : lines)
    expected.push_back(fixture.expected_response(line));

  std::atomic<long> mismatches{0};
  std::atomic<long> transport_errors{0};
  const int client_count = 3;
  std::vector<std::thread> threads;
  for (int c = 0; c < client_count; ++c) {
    threads.emplace_back([&, c] {
      try {
        Rng rng(77 + static_cast<std::uint64_t>(c));
        const ZipfSampler zipf(lines.size(), 1.1);
        Client client(fixture.client_config());
        for (int i = 0; i < 200; ++i) {
          const std::size_t pick = zipf.sample(rng);
          if (client.roundtrip(lines[pick]) != expected[pick])
            mismatches.fetch_add(1);
        }
      } catch (const Error&) {
        transport_errors.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  fixture.server.stop();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(transport_errors.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, CacheAdversarial,
                         ::testing::Values(1, 2, 8));

}  // namespace
}  // namespace memstress::server
