// Client resilience under a misbehaving or overloaded server.
//
// Two hazards are pinned here:
//   * A server that stalls mid-response (bytes sent, newline never comes)
//     must not wedge the client past its receive deadline — the SO_RCVTIMEO
//     timeout has to fire even though data already arrived.
//   * Sustained "busy" backpressure must not turn the retry loop into an
//     unbounded wait: retry_budget_ms caps the total wall time of one
//     request() including every backoff sleep.
#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "server/client.hpp"
#include "server_test_util.hpp"

namespace memstress::server {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// A deliberately hostile loopback server for client tests. Reads one
/// request line per connection, then misbehaves per `Mode`.
class MisbehavingServer {
 public:
  enum class Mode {
    StallMidResponse,  ///< send half a frame, then go silent
    AlwaysBusy,        ///< answer "busy" and close, forever
    DieMidResponse,    ///< send half a frame, then close — a server crash
  };

  explicit MisbehavingServer(Mode mode) : mode_(mode) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    ::listen(listen_fd_, 16);
    socklen_t len = sizeof addr;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    ::fcntl(listen_fd_, F_SETFL, O_NONBLOCK);
    thread_ = std::thread([this] { serve(); });
  }

  ~MisbehavingServer() {
    running_.store(false);
    thread_.join();
    ::close(listen_fd_);
  }

  int port() const { return port_; }

 private:
  void serve() {
    while (running_.load()) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        continue;
      }
      handle(fd);
      ::close(fd);
    }
  }

  void handle(int fd) {
    // Drain one request line (best effort — the exact bytes don't matter).
    char buffer[4096];
    std::string seen;
    while (seen.find('\n') == std::string::npos) {
      const ssize_t n = ::read(fd, buffer, sizeof buffer);
      if (n <= 0) return;
      seen.append(buffer, static_cast<std::size_t>(n));
    }
    if (mode_ == Mode::DieMidResponse) {
      // Half a frame, then the close() in the caller — the wire view of a
      // server killed mid-write. The client must classify this as
      // ConnectionLost, not wait out its receive timeout.
      const std::string partial = "{\"v\":1,\"id\":1,\"ok\":tr";
      (void)::write(fd, partial.data(), partial.size());
      return;
    }
    if (mode_ == Mode::StallMidResponse) {
      // Half a frame: the client has bytes but no newline, so only its
      // receive timeout can save it. Then hold the connection open until
      // the client gives up.
      const std::string partial = "{\"v\":1,\"id\":1,\"ok\":tr";
      (void)::write(fd, partial.data(), partial.size());
      while (running_.load()) {
        const ssize_t n = ::read(fd, buffer, sizeof buffer);
        if (n <= 0) return;  // client hung up — done stalling
      }
    } else {
      const std::string line =
          make_error(0, "busy", "synthetic overload, try later") + "\n";
      (void)::write(fd, line.data(), line.size());
      // Like the real acceptor: busy answers are followed by a close.
    }
  }

  Mode mode_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{true};
  std::thread thread_;
};

TEST(ClientTimeout, StalledMidResponseServerCannotWedgeTheClient) {
  MisbehavingServer server(MisbehavingServer::Mode::StallMidResponse);
  ClientConfig config;
  config.port = server.port();
  config.timeout_ms = 300;
  Client client(config);

  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(client.roundtrip("{\"v\":1,\"id\":1,\"type\":\"health\"}"),
               Error);
  const double elapsed = seconds_since(start);
  EXPECT_GE(elapsed, 0.2);  // the timeout, not an instant failure
  EXPECT_LT(elapsed, 5.0);  // bounded — never the far side of the stall
}

TEST(ClientTimeout, SlowHandlerIsBoundedByTheReceiveDeadline) {
  // The end-to-end variant against the real server: a hidden "sleep"
  // request holds the worker far past the client's deadline. The client
  // must give up at its own timeout, not wait out the handler.
  ServerConfig server_config;
  server_config.workers = 2;
  TestServer fixture(server_config);
  ClientConfig config = fixture.client_config();
  config.timeout_ms = 200;
  Client client(config);

  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(client.roundtrip("{\"v\":1,\"id\":1,\"type\":\"sleep\","
                                "\"params\":{\"ms\":1000}}"),
               Error);
  EXPECT_LT(seconds_since(start), 0.9);  // well before the 1 s handler
  fixture.server.stop();
}

TEST(ClientTimeout, RetryBudgetCapsTotalWallTimeUnderSustainedBusy) {
  MisbehavingServer server(MisbehavingServer::Mode::AlwaysBusy);
  ClientConfig config;
  config.port = server.port();
  config.timeout_ms = 1000;
  config.max_retries = 1000;  // attempts alone must not be the bound
  config.backoff_initial_ms = 20;
  config.backoff_max_ms = 50;
  config.retry_budget_ms = 300;
  Client client(config);

  const auto start = std::chrono::steady_clock::now();
  try {
    client.request("health");
    FAIL() << "sustained busy must surface as ServerError";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.code(), "busy");
  }
  const double elapsed = seconds_since(start);
  EXPECT_LT(elapsed, 2.0);  // budget + one in-flight exchange, not minutes
}

TEST(ClientConnectionLost, ServerDyingMidResponseIsTypedConnectionLost) {
  // The coordinator's died-vs-slow distinction: a connection that closes
  // mid-frame is ConnectionLost (requeue the shard now), never a generic
  // timeout-shaped Error (just retry later).
  MisbehavingServer server(MisbehavingServer::Mode::DieMidResponse);
  ClientConfig config;
  config.port = server.port();
  config.timeout_ms = 5000;
  Client client(config);

  const auto start = std::chrono::steady_clock::now();
  try {
    client.request("health");
    FAIL() << "a mid-frame close must throw";
  } catch (const ConnectionLost&) {
    // typed as intended
  } catch (const Error& e) {
    FAIL() << "expected ConnectionLost, got plain Error: " << e.what();
  }
  // Classified by the close, not by waiting out the receive deadline.
  EXPECT_LT(seconds_since(start), 2.0);
}

TEST(ClientConnectionLost, ConnectRefusedIsTypedConnectionLost) {
  // Grab a port that refuses connections: bind + listen, note the port,
  // close — nothing is listening there for the duration of the test.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  const int dead_port = ntohs(addr.sin_port);
  ::close(fd);

  ClientConfig config;
  config.port = dead_port;
  config.timeout_ms = 1000;
  Client client(config);
  EXPECT_THROW(client.request("health"), ConnectionLost);
}

TEST(ClientConnectionLost, ReceiveTimeoutStaysAPlainError) {
  // The inverse pin: a slow (stalled) server is NOT ConnectionLost — the
  // transport is alive, so a coordinator must not requeue onto survivors.
  MisbehavingServer server(MisbehavingServer::Mode::StallMidResponse);
  ClientConfig config;
  config.port = server.port();
  config.timeout_ms = 200;
  Client client(config);
  try {
    client.request("health");
    FAIL() << "a stalled response must time out";
  } catch (const ConnectionLost& e) {
    FAIL() << "timeout misclassified as ConnectionLost: " << e.what();
  } catch (const Error&) {
    // the intended classification
  }
}

TEST(ClientTimeout, BackoffSleepsAreCappedAtBackoffMax) {
  MisbehavingServer server(MisbehavingServer::Mode::AlwaysBusy);
  ClientConfig config;
  config.port = server.port();
  config.max_retries = 6;
  config.backoff_initial_ms = 10;
  config.backoff_max_ms = 20;   // without the cap: 10+20+40+80+160+320
  config.retry_budget_ms = 0;   // budget off — the cap is what bounds us
  Client client(config);

  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(client.request("health"), ServerError);
  const double elapsed = seconds_since(start);
  // Capped sleeps: 10 + 20*5 = 110 ms plus exchange overhead. The uncapped
  // series would need at least 630 ms of sleep alone.
  EXPECT_LT(elapsed, 0.6);
}

}  // namespace
}  // namespace memstress::server
