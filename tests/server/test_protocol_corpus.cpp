// Replays every regression artifact in tests/server/corpus/regressions/
// through the full in-process request path. The corpus is append-only:
// hand-written seeds pin historically tricky protocol edges, and
// fuzz_protocol drops minimized crash/hang inputs here — so every bug the
// fuzzer ever found stays fixed, enforced in tier-1 on every build.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "server_test_util.hpp"

namespace memstress::server {
namespace {

namespace fs = std::filesystem;

fs::path corpus_dir() {
  return fs::path(MEMSTRESS_SOURCE_DIR) / "tests" / "server" / "corpus" /
         "regressions";
}

/// The replay convention from corpus/README.md: one frame per file, the
/// first line only, trailing newline stripped. Bytes are read raw — several
/// seeds are deliberately invalid UTF-8 or carry NULs.
std::string read_frame(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const std::size_t newline = data.find('\n');
  if (newline != std::string::npos) data.resize(newline);
  if (!data.empty() && data.back() == '\r') data.pop_back();
  return data;
}

std::vector<fs::path> corpus_files() {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(corpus_dir()))
    if (entry.is_regular_file() && entry.path().extension() == ".txt")
      files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  return files;
}

TEST(ProtocolCorpus, EveryRegressionArtifactReplaysStructured) {
  const auto service = make_test_service();
  const std::vector<fs::path> files = corpus_files();
  ASSERT_GE(files.size(), 13u) << "seed corpus went missing from "
                               << corpus_dir();
  for (const fs::path& path : files) {
    const std::string frame = read_frame(path);
    std::string response;
    ASSERT_NO_THROW(response = handle_line_inprocess(*service, frame))
        << path.filename();
    ASSERT_FALSE(response.empty()) << path.filename();
    EXPECT_EQ(response.find('\n'), std::string::npos) << path.filename();

    // The response must itself be a clean protocol frame: parseable JSON
    // with the ok/error envelope.
    Json doc;
    ASSERT_NO_THROW(doc = Json::parse(response))
        << path.filename() << " produced unparseable: " << response;
    ASSERT_TRUE(doc.is_object()) << path.filename();
    bool ok = false;
    ASSERT_NO_THROW(ok = doc.at("ok").as_bool()) << path.filename();
    if (!ok) {
      ASSERT_NO_THROW(doc.at("error").at("code").as_string())
          << path.filename() << " error without a code: " << response;
    }
  }
}

TEST(ProtocolCorpus, ReplayIsDeterministic) {
  const auto service = make_test_service();
  for (const fs::path& path : corpus_files()) {
    const std::string frame = read_frame(path);
    const std::string first = handle_line_inprocess(*service, frame);
    const std::string second = handle_line_inprocess(*service, frame);
    EXPECT_EQ(first, second) << path.filename();
  }
}

}  // namespace
}  // namespace memstress::server
