// Golden-value regression net for the paper's headline numbers.
//
// These tests pin the exact values the current physics produces for a small
// but fully representative grid: Table 1's per-stress-condition defect
// coverage / DPM, and Figure 8's detectable-open-resistance thresholds at
// two test frequencies. Any change to the analog engine, the march
// compiler, the detectability lookup or the estimator arithmetic that moves
// a number — even in the last digit — fails here first, with the old and
// new values side by side.
//
// The constants were harvested from a clean build by running this binary
// with MEMSTRESS_GOLDEN_DUMP=1, which prints every golden at %.17g
// precision (and skips the assertions). Re-run it the same way when a
// deliberate physics change needs new goldens, and paste the block in.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analog/batch.hpp"
#include "defects/defect.hpp"
#include "estimator/coverage.hpp"
#include "estimator/detectability.hpp"
#include "march/library.hpp"
#include "sram/block.hpp"
#include "tester/ate.hpp"

namespace memstress {
namespace {

bool dump_mode() { return std::getenv("MEMSTRESS_GOLDEN_DUMP") != nullptr; }

/// Tight relative pin: the flow is deterministic, so the only slack needed
/// is for the %.17g print/parse round trip of the constants themselves.
void expect_golden(double actual, double golden, const char* what) {
  EXPECT_NEAR(actual, golden, std::abs(golden) * 1e-12 + 1e-15) << what;
}

sram::BlockSpec golden_block() {
  sram::BlockSpec spec;
  spec.rows = 2;
  spec.cols = 1;
  return spec;
}

/// A few resistances per detectability band keep this at ~260 transients
/// (seconds, not minutes) while every bridge/open category and all four
/// supply corners at both the VLV and the production rate stay covered.
/// 30 kOhm sits in the bridge transition band, so the VLV, Vmin and
/// Vnom/Vmax rows all land on different coverages — the condition
/// dependence is part of what the golden pins. (Vnom and Vmax coincide on
/// this grid: no sampled bridge resistance flips between 1.80 V and 1.95 V,
/// which the equality below also locks in.)
const estimator::DetectabilityDb& golden_db() {
  static const estimator::DetectabilityDb db = [] {
    estimator::CharacterizeSpec spec;
    spec.block = golden_block();
    spec.test = march::test_11n();
    spec.vdds = {1.0, 1.65, 1.8, 1.95};
    spec.periods = {100e-9, 25e-9};
    spec.bridge_resistances = {1e3, 30e3, 90e3};
    spec.open_resistances = {3e4, 1e6};
    spec.gox_vbds = {1.7, 1.925};
    return estimator::characterize(spec);
  }();
  return db;
}

struct RowGolden {
  const char* label;
  double defect_coverage;
  double dpm_value;
  double dpm_ratio;
};

TEST(GoldenTable1, PerStressConditionDpm) {
  const estimator::FaultCoverageEstimator estimator(
      golden_db(), estimator::PopulationModel::calibrate(), defects::FabModel{});
  const estimator::EstimatorReport report =
      estimator.table1({512, 64, 8, 1});
  ASSERT_EQ(report.rows.size(), 4u);

  if (dump_mode()) {
    std::printf("  // yield\n  expect_golden(report.yield, %.17g, ...)\n",
                report.yield);
    for (const auto& row : report.rows)
      std::printf("  {\"%s\", %.17g, %.17g, %.17g},\n", row.label.c_str(),
                  row.defect_coverage, row.dpm_value, row.dpm_ratio);
    GTEST_SKIP() << "dump mode: goldens printed, assertions skipped";
  }

  // clang-format off
  const std::vector<RowGolden> golden{
      {"1.00 - VLV",  0.92243755743045708, 1787.6627712062332, 1.0},
      {"1.65 - Vmin", 0.84715562609639972, 3519.7079835551649, 1.9688881148317625},
      {"1.80 - Vnom", 0.83723164313758258, 3747.8092027217745, 2.096485569363244},
      {"1.95 - Vmax", 0.83723164313758258, 3747.8092027217745, 2.096485569363244},
  };
  // clang-format on
  expect_golden(report.yield, 0.9771953755082472, "yield");
  for (std::size_t i = 0; i < golden.size(); ++i) {
    const auto& row = report.rows[i];
    const auto& g = golden[i];
    EXPECT_EQ(row.label, g.label);
    expect_golden(row.defect_coverage, g.defect_coverage, g.label);
    expect_golden(row.dpm_value, g.dpm_value, g.label);
    expect_golden(row.dpm_ratio, g.dpm_ratio, g.label);
  }
}

TEST(GoldenSolverModes, GridVerdictsIdenticalAcrossSolvers) {
  // The Table 1 / Fig 8 goldens above run under the default solver
  // (batched). This pins the other two backends to the same database,
  // byte for byte: with identical CSVs, every number the estimator
  // derives — coverage, DPM, thresholds — is identical in all three
  // modes, so the golden constants hold everywhere.
  if (dump_mode()) GTEST_SKIP() << "dump mode: solver matrix skipped";
  const std::string reference = golden_db().to_csv();
  for (const auto mode :
       {analog::SolverMode::Exact, analog::SolverMode::Incremental}) {
    estimator::CharacterizeSpec spec;
    spec.block = golden_block();
    spec.test = march::test_11n();
    spec.vdds = {1.0, 1.65, 1.8, 1.95};
    spec.periods = {100e-9, 25e-9};
    spec.bridge_resistances = {1e3, 30e3, 90e3};
    spec.open_resistances = {3e4, 1e6};
    spec.gox_vbds = {1.7, 1.925};
    spec.solver = mode;
    EXPECT_EQ(estimator::characterize(spec).to_csv(), reference)
        << "solver mode " << analog::solver_mode_name(mode);
  }
}

/// Figure 8's measurement, miniaturized: the smallest detected SenseOut
/// open resistance at one period, found by log-space bisection.
double detection_threshold(double period) {
  const sram::BlockSpec spec = golden_block();
  const analog::Netlist golden = sram::build_block(spec);
  double lo = 1e5;
  double hi = 1e9;
  const auto detected = [&](double r) {
    const defects::Defect d = defects::representative_open(
        layout::OpenCategory::SenseOut, spec, r);
    analog::Netlist netlist = golden;
    defects::inject(netlist, d);
    return !tester::run_march_analog(std::move(netlist), spec,
                                     march::test_11n(), {1.8, period})
                .log.passed();
  };
  if (detected(lo)) return lo;
  if (!detected(hi)) return hi;
  for (int iter = 0; iter < 8; ++iter) {
    const double mid = std::sqrt(lo * hi);
    (detected(mid) ? hi : lo) = mid;
  }
  return std::sqrt(lo * hi);
}

TEST(GoldenFig8, OpenThresholdVsFrequency) {
  const double slow = detection_threshold(100e-9);  // 10 MHz
  const double fast = detection_threshold(25e-9);   // 40 MHz

  if (dump_mode()) {
    std::printf("  kSlowThreshold = %.17g;\n  kFastThreshold = %.17g;\n",
                slow, fast);
    GTEST_SKIP() << "dump mode: goldens printed, assertions skipped";
  }

  const double kSlowThreshold = 47828581.416537911;
  const double kFastThreshold = 11757432.659207111;
  expect_golden(slow, kSlowThreshold, "threshold @ 10 MHz");
  expect_golden(fast, kFastThreshold, "threshold @ 40 MHz");
  // The paper's Figure 8 shape: faster testing lowers the detectable-open
  // floor, with a clear multi-x gap between the two rates.
  EXPECT_LT(fast, slow);
  EXPECT_GT(slow / fast, 2.0);
}

}  // namespace
}  // namespace memstress
