#include "mbist/controller.hpp"

#include <gtest/gtest.h>

#include "march/library.hpp"
#include "util/error.hpp"

namespace memstress::mbist {
namespace {

using march::DataBackground;
using sram::BehavioralSram;
using sram::FailureEnvelope;
using sram::FaultType;
using sram::InjectedFault;

InjectedFault stuck(int row, int col, bool value) {
  InjectedFault f;
  f.type = value ? FaultType::StuckAt1 : FaultType::StuckAt0;
  f.row = row;
  f.col = col;
  f.envelope = FailureEnvelope::always();
  return f;
}

TEST(Controller, FaultFreeSelfTestPasses) {
  BehavioralSram mem(8, 8);
  EXPECT_TRUE(self_test(mem, assemble(march::test_11n())));
}

TEST(Controller, DetectsAndCapturesAFault) {
  BehavioralSram mem(8, 8);
  mem.add_fault(stuck(3, 4, true));
  BehavioralPort port(mem);
  Controller controller(assemble(march::test_11n()), port);
  controller.run();
  EXPECT_TRUE(controller.done());
  EXPECT_TRUE(controller.failed());
  ASSERT_FALSE(controller.fail_fifo().empty());
  for (const auto& capture : controller.fail_fifo()) {
    EXPECT_EQ(capture.row, 3);
    EXPECT_EQ(capture.col, 4);
    EXPECT_FALSE(capture.expected);  // SA1 fails reading '0'
    EXPECT_TRUE(capture.observed);
  }
}

TEST(Controller, CycleCountMatchesProgramPrediction) {
  BehavioralSram mem(8, 8);
  const Program program = assemble(march::test_11n());
  BehavioralPort port(mem);
  Controller controller(program, port);
  const std::uint64_t cycles = controller.run();
  EXPECT_EQ(cycles, static_cast<std::uint64_t>(program.cycle_count(64)));
}

TEST(Controller, StepIsResumable) {
  // Single-stepping must reach the same outcome as run().
  BehavioralSram mem(4, 4);
  mem.add_fault(stuck(1, 1, false));
  BehavioralPort port(mem);
  Controller controller(assemble(march::mats_plus_plus()), port);
  long steps = 0;
  while (controller.step()) ++steps;
  EXPECT_TRUE(controller.done());
  EXPECT_TRUE(controller.failed());
  EXPECT_GT(steps, 4 * 4 * 6);
}

TEST(Controller, FifoCapsAndReportsOverflow) {
  BehavioralSram mem(8, 8);
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c) mem.add_fault(stuck(r, c, true));
  ControllerConfig config;
  config.fail_fifo_depth = 4;
  BehavioralPort port(mem);
  Controller controller(assemble(march::test_11n()), port, config);
  controller.run();
  EXPECT_EQ(controller.fail_fifo().size(), 4u);
  EXPECT_TRUE(controller.fifo_overflowed());
  EXPECT_GT(controller.fail_count(), 4u);
}

TEST(Controller, StopOnFirstFailForDiagnosis) {
  BehavioralSram mem(8, 8);
  mem.add_fault(stuck(2, 2, true));
  ControllerConfig config;
  config.stop_on_first_fail = true;
  BehavioralPort port(mem);
  Controller controller(assemble(march::test_11n()), port, config);
  controller.run();
  EXPECT_TRUE(controller.done());
  EXPECT_EQ(controller.fail_count(), 1u);
  ASSERT_EQ(controller.fail_fifo().size(), 1u);
  EXPECT_EQ(controller.fail_fifo()[0].row, 2);
}

TEST(Controller, MatchesSoftwareMarchEngineOnEveryFaultType) {
  // The hardware model and the software engine must agree op for op. Run
  // both against the same fault menagerie and compare pass/fail and the
  // first failing (row, col).
  struct Case {
    FaultType type;
    int aux_row;
  };
  const Case cases[] = {
      {FaultType::StuckAt0, -1},      {FaultType::StuckAt1, -1},
      {FaultType::TransitionUp, -1},  {FaultType::TransitionDown, -1},
      {FaultType::DecoderWrongRow, 5}, {FaultType::DecoderMultiRow, 5},
  };
  for (const auto& test_case : cases) {
    auto make_memory = [&] {
      BehavioralSram mem(8, 4);
      InjectedFault f;
      f.type = test_case.type;
      f.row = 2;
      f.col = (test_case.type == FaultType::DecoderWrongRow ||
               test_case.type == FaultType::DecoderMultiRow)
                  ? -1
                  : 1;
      f.aux_row = test_case.aux_row;
      f.envelope = FailureEnvelope::always();
      mem.add_fault(f);
      return mem;
    };
    BehavioralSram sw_mem = make_memory();
    const march::FailLog sw = march::run_march(sw_mem, march::test_11n());

    BehavioralSram hw_mem = make_memory();
    BehavioralPort port(hw_mem);
    Controller controller(assemble(march::test_11n()), port);
    controller.run();

    EXPECT_EQ(sw.passed(), !controller.failed())
        << fault_type_name(test_case.type);
    if (!sw.passed() && controller.failed()) {
      EXPECT_EQ(sw.fails().front().row, controller.fail_fifo().front().row)
          << fault_type_name(test_case.type);
      EXPECT_EQ(sw.fails().front().col, controller.fail_fifo().front().col)
          << fault_type_name(test_case.type);
    }
  }
}

TEST(Controller, CheckerboardBackgroundMatchesEngine) {
  auto make_memory = [] {
    BehavioralSram mem(4, 4);
    InjectedFault f;
    f.type = FaultType::CouplingState;
    f.row = 1;
    f.col = 1;
    f.aux_row = 1;
    f.aux_col = 2;
    f.value = false;
    f.envelope = FailureEnvelope::always();
    mem.add_fault(f);
    return mem;
  };
  BehavioralSram sw_mem = make_memory();
  march::RunOptions options;
  options.background = DataBackground::Checkerboard;
  const bool sw_pass =
      march::run_march(sw_mem, march::mats_plus_plus(), options).passed();

  BehavioralSram hw_mem = make_memory();
  const bool hw_pass = self_test(
      hw_mem,
      assemble(march::mats_plus_plus(), DataBackground::Checkerboard));
  EXPECT_EQ(sw_pass, hw_pass);
  EXPECT_FALSE(hw_pass);  // the checkerboard exposes this CFst
}

TEST(Controller, MoviProgramCatchesStaleAddressBit) {
  BehavioralSram mem(8, 2);  // 16 cells -> 4 address bits
  InjectedFault f;
  f.type = FaultType::DecoderStaleBit;
  f.row = 0;
  f.col = -1;
  f.aux_row = 2;
  f.envelope = FailureEnvelope::always();
  mem.add_fault(f);
  EXPECT_FALSE(self_test(mem, assemble_movi(march::mats_plus_plus(), 4)));
}

TEST(Controller, RetentionProgramCatchesRetentionFault) {
  BehavioralSram mem(4, 4);
  InjectedFault f;
  f.type = FaultType::DataRetention;
  f.row = 2;
  f.col = 3;
  f.value = false;
  f.retention_s = 1e-6;
  f.envelope = FailureEnvelope::always();
  mem.add_fault(f);
  // March alone misses it...
  EXPECT_TRUE(self_test(mem, assemble(march::test_11n())));
  // ...the pause program (4000 cycles * 25 ns = 100 us >> 1 us) catches it.
  EXPECT_FALSE(self_test(mem, assemble_retention(4000)));
}

TEST(Controller, RejectsProgramWithoutStop) {
  BehavioralSram mem(2, 2);
  Program broken;
  broken.instructions.push_back({Opcode::SetRotation, 0});
  BehavioralPort port(mem);
  Controller controller(broken, port);
  EXPECT_THROW(controller.run(), Error);
}

}  // namespace
}  // namespace memstress::mbist
