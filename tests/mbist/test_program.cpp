#include "mbist/program.hpp"

#include <gtest/gtest.h>

#include "march/library.hpp"
#include "util/error.hpp"

namespace memstress::mbist {
namespace {

TEST(Assemble, MarchTestBecomesOneElementPerMarchElement) {
  const Program program = assemble(march::test_11n());
  // SETBG + SETROT + 5 elements + STOP.
  EXPECT_EQ(program.instructions.size(), 2u + 5u + 1u);
  EXPECT_EQ(program.elements.size(), 5u);
  EXPECT_EQ(program.instructions.back().opcode, Opcode::Stop);
}

TEST(Assemble, RejectsEmptyTest) {
  march::MarchTest empty;
  EXPECT_THROW(assemble(empty), Error);
}

TEST(Assemble, BackgroundAndRotationEncoded) {
  const Program program =
      assemble(march::mats_plus_plus(), march::DataBackground::Checkerboard, 3);
  EXPECT_EQ(program.instructions[0].opcode, Opcode::SetBackground);
  EXPECT_EQ(program.instructions[0].operand, 1u);
  EXPECT_EQ(program.instructions[1].opcode, Opcode::SetRotation);
  EXPECT_EQ(program.instructions[1].operand, 3u);
}

TEST(CycleCount, MatchesMarchComplexity) {
  const Program program = assemble(march::test_11n());
  const long cells = 64;
  // 11 ops per cell + 5 element fetches + 3 control cycles.
  EXPECT_EQ(program.cycle_count(cells), 11 * cells + 5 + 3);
}

TEST(CycleCount, PausesCounted) {
  const Program program = assemble_retention(1000);
  const long cells = 16;
  // 4 single-op elements (+ fetch each) + 2 pauses of 1000 + 3 control.
  EXPECT_EQ(program.cycle_count(cells), 4 * cells + 4 + 2000 + 3);
}

TEST(AssembleMovi, OneRotationBlockPerAddressBit) {
  const Program program = assemble_movi(march::mats_plus_plus(), 4);
  int rotations = 0;
  int elements = 0;
  for (const auto& instruction : program.instructions) {
    if (instruction.opcode == Opcode::SetRotation) ++rotations;
    if (instruction.opcode == Opcode::Element) ++elements;
  }
  EXPECT_EQ(rotations, 4);
  EXPECT_EQ(elements, 4 * 3);  // MATS++ has 3 elements
  // The element table is shared, not duplicated.
  EXPECT_EQ(program.elements.size(), 3u);
}

TEST(AssembleMovi, ValidatesBits) {
  EXPECT_THROW(assemble_movi(march::mats_plus_plus(), 0), Error);
}

TEST(Listing, ShowsOpcodesAndElements) {
  const Program program = assemble(march::mats_plus_plus());
  const std::string text = program.listing();
  EXPECT_NE(text.find("SETBG"), std::string::npos);
  EXPECT_NE(text.find("ELEMENT"), std::string::npos);
  EXPECT_NE(text.find("^(r0,w1)"), std::string::npos);
  EXPECT_NE(text.find("STOP"), std::string::npos);
}

TEST(Instruction, ToStringCoversAllOpcodes) {
  const Instruction setbg{Opcode::SetBackground, 1};
  const Instruction pause{Opcode::Pause, 42};
  const Instruction stop{Opcode::Stop, 0};
  EXPECT_NE(setbg.to_string().find("checker"), std::string::npos);
  EXPECT_NE(pause.to_string().find("42"), std::string::npos);
  EXPECT_EQ(stop.to_string(), "STOP");
}

}  // namespace
}  // namespace memstress::mbist
