#include "defects/defect.hpp"

#include <gtest/gtest.h>

#include "layout/netnames.hpp"
#include "util/error.hpp"

namespace memstress::defects {
namespace {

using layout::BridgeCategory;
using layout::OpenCategory;

sram::BlockSpec small_block() {
  sram::BlockSpec spec;
  spec.rows = 2;
  spec.cols = 1;
  return spec;
}

sram::BlockSpec wide_block() {
  sram::BlockSpec spec;
  spec.rows = 4;
  spec.cols = 2;
  return spec;
}

TEST(Defect, BridgeTagMentionsEverything) {
  const Defect d = representative_bridge(BridgeCategory::CellTrueFalse,
                                         small_block(), 90e3);
  const std::string tag = d.tag();
  EXPECT_NE(tag.find("bridge"), std::string::npos);
  EXPECT_NE(tag.find("cell-true-false"), std::string::npos);
  EXPECT_NE(tag.find("90 kOhm"), std::string::npos);
}

TEST(Defect, BreakdownTagMentionsVbd) {
  Defect d = representative_bridge(BridgeCategory::CellGateOxide, small_block(),
                                   5e3);
  d.breakdown_v = 1.85;
  EXPECT_NE(d.tag().find("Vbd=1.85 V"), std::string::npos);
}

TEST(Defect, OpenTagMentionsJoint) {
  const Defect d =
      representative_open(OpenCategory::AddressInput, small_block(), 5e6);
  EXPECT_NE(d.tag().find("open"), std::string::npos);
  EXPECT_NE(d.tag().find("addr0.in"), std::string::npos);
  EXPECT_NE(d.tag().find("5 MOhm"), std::string::npos);
}

TEST(Inject, BridgeAddsOneResistor) {
  analog::Netlist nl = sram::build_block(small_block());
  const std::size_t before = nl.resistors().size();
  inject(nl, representative_bridge(BridgeCategory::CellTrueFalse, small_block(),
                                   1e3));
  EXPECT_EQ(nl.resistors().size(), before + 1);
}

TEST(Inject, OpenRaisesJointResistance) {
  analog::Netlist nl = sram::build_block(small_block());
  const std::size_t resistors_before = nl.resistors().size();
  inject(nl, representative_open(OpenCategory::Wordline, small_block(), 2e6));
  EXPECT_EQ(nl.resistors().size(), resistors_before);  // no new device
  bool found = false;
  for (const auto& r : nl.resistors()) {
    if (r.name == "joint:" + layout::joint_wordline(0)) {
      EXPECT_DOUBLE_EQ(r.ohms, 2e6);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Inject, BreakdownBridgeAddsBreakdownDevice) {
  analog::Netlist nl = sram::build_block(small_block());
  Defect d = representative_bridge(BridgeCategory::CellGateOxide, small_block(),
                                   5e3);
  d.breakdown_v = 1.8;
  inject(nl, d);
  ASSERT_EQ(nl.breakdowns().size(), 1u);
  EXPECT_DOUBLE_EQ(nl.breakdowns()[0].vbd, 1.8);
}

TEST(Inject, RejectsNonPositiveResistance) {
  analog::Netlist nl = sram::build_block(small_block());
  Defect d = representative_bridge(BridgeCategory::CellTrueFalse, small_block(),
                                   1e3);
  d.resistance = 0.0;
  EXPECT_THROW(inject(nl, d), Error);
}

TEST(Inject, UnknownSiteThrows) {
  analog::Netlist nl = sram::build_block(small_block());
  Defect d;
  d.kind = DefectKind::Bridge;
  d.net_a = "no_such_net";
  d.net_b = "vdd";
  d.resistance = 1e3;
  EXPECT_THROW(inject(nl, d), Error);
  Defect open;
  open.kind = DefectKind::Open;
  open.net_a = "no_such_joint";
  open.resistance = 1e6;
  EXPECT_THROW(inject(nl, open), Error);
}

TEST(Representative, AllBridgeCategoriesInjectableOnWideBlock) {
  const sram::BlockSpec spec = wide_block();
  analog::Netlist golden = sram::build_block(spec);
  for (const auto category : simulatable_bridge_categories(spec)) {
    analog::Netlist nl = golden;
    EXPECT_NO_THROW(inject(nl, representative_bridge(category, spec, 1e3)))
        << layout::bridge_category_name(category);
  }
}

TEST(Representative, AllOpenCategoriesInjectable) {
  const sram::BlockSpec spec = small_block();
  analog::Netlist golden = sram::build_block(spec);
  for (const auto category : simulatable_open_categories(spec)) {
    analog::Netlist nl = golden;
    EXPECT_NO_THROW(inject(nl, representative_open(category, spec, 1e6)))
        << layout::open_category_name(category);
  }
}

TEST(Representative, GeometryGatesCategories) {
  const auto narrow = simulatable_bridge_categories(small_block());
  EXPECT_EQ(std::count(narrow.begin(), narrow.end(),
                       BridgeCategory::BitlineBitline), 0);
  EXPECT_EQ(std::count(narrow.begin(), narrow.end(),
                       BridgeCategory::AddressAddress), 0);
  const auto wide = simulatable_bridge_categories(wide_block());
  EXPECT_EQ(std::count(wide.begin(), wide.end(),
                       BridgeCategory::BitlineBitline), 1);
  EXPECT_EQ(std::count(wide.begin(), wide.end(),
                       BridgeCategory::AddressAddress), 1);
}

TEST(Representative, RequiresGeometryForPairCategories) {
  EXPECT_THROW(representative_bridge(BridgeCategory::BitlineBitline,
                                     small_block(), 1e3), Error);
  EXPECT_THROW(representative_bridge(BridgeCategory::AddressAddress,
                                     small_block(), 1e3), Error);
}

}  // namespace
}  // namespace memstress::defects
