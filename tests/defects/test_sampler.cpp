#include "defects/sampler.hpp"

#include <gtest/gtest.h>

#include "layout/sram_layout.hpp"
#include "util/error.hpp"

namespace memstress::defects {
namespace {

using layout::BridgeCategory;
using layout::OpenCategory;

sram::BlockSpec block_2x1() {
  sram::BlockSpec spec;
  spec.rows = 2;
  spec.cols = 1;
  return spec;
}

SitePopulation extracted_population() {
  const auto model = layout::generate_sram_layout(8, 8);
  return aggregate_sites(layout::extract_bridges(model),
                         layout::extract_opens(model));
}

TEST(AggregateSites, SumsWeightsPerCategory) {
  std::vector<layout::BridgeSite> bridges(2);
  bridges[0].category = BridgeCategory::CellTrueFalse;
  bridges[0].weight = 1.0;
  bridges[1].category = BridgeCategory::CellTrueFalse;
  bridges[1].weight = 2.0;
  std::vector<layout::OpenSite> opens(1);
  opens[0].category = OpenCategory::Wordline;
  opens[0].weight = 0.5;
  const SitePopulation pop = aggregate_sites(bridges, opens);
  ASSERT_EQ(pop.bridges.size(), 1u);
  EXPECT_DOUBLE_EQ(pop.bridges[0].second, 3.0);
  EXPECT_DOUBLE_EQ(pop.bridge_weight_total(), 3.0);
  EXPECT_DOUBLE_EQ(pop.open_weight_total(), 0.5);
}

TEST(DefectSampler, RejectsEmptyPopulation) {
  EXPECT_THROW(DefectSampler({}, FabModel{}, block_2x1()), Error);
}

TEST(DefectSampler, SamplesAreAlwaysInjectable) {
  DefectSampler sampler(extracted_population(), FabModel{}, block_2x1());
  const analog::Netlist golden = sram::build_block(block_2x1());
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    analog::Netlist nl = golden;
    const Defect d = sampler.sample(rng);
    EXPECT_NO_THROW(inject(nl, d)) << d.tag();
  }
}

TEST(DefectSampler, MixFollowsBridgeFraction) {
  FabModel fab;
  fab.bridge_fraction = 0.8;
  DefectSampler sampler(extracted_population(), fab, block_2x1());
  Rng rng(11);
  int bridges = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i)
    if (sampler.sample(rng).kind == DefectKind::Bridge) ++bridges;
  EXPECT_NEAR(bridges / static_cast<double>(n), 0.8, 0.03);
}

TEST(DefectSampler, GateOxideDefectsGetBreakdownVoltage) {
  DefectSampler sampler(extracted_population(), FabModel{}, block_2x1());
  Rng rng(13);
  bool saw_gox = false;
  for (int i = 0; i < 5000 && !saw_gox; ++i) {
    const Defect d = sampler.sample(rng);
    if (d.kind == DefectKind::Bridge &&
        d.bridge_category == BridgeCategory::CellGateOxide) {
      saw_gox = true;
      EXPECT_GT(d.breakdown_v, 0.0);
    } else if (d.kind == DefectKind::Bridge) {
      EXPECT_DOUBLE_EQ(d.breakdown_v, 0.0);
    }
  }
  EXPECT_TRUE(saw_gox);
}

TEST(DefectSampler, DropsCategoriesTheBlockCannotHost) {
  // 2x1 block with 1 address bit cannot host BitlineBitline or
  // AddressAddress bridges; the sampler must never produce them.
  DefectSampler sampler(extracted_population(), FabModel{}, block_2x1());
  Rng rng(17);
  for (int i = 0; i < 3000; ++i) {
    const Defect d = sampler.sample(rng);
    if (d.kind != DefectKind::Bridge) continue;
    EXPECT_NE(d.bridge_category, BridgeCategory::BitlineBitline);
    EXPECT_NE(d.bridge_category, BridgeCategory::AddressAddress);
  }
}

TEST(DefectSampler, DeterministicForSameSeed) {
  DefectSampler sampler(extracted_population(), FabModel{}, block_2x1());
  Rng a(23), b(23);
  for (int i = 0; i < 50; ++i) {
    const Defect da = sampler.sample(a);
    const Defect db = sampler.sample(b);
    EXPECT_EQ(da.tag(), db.tag());
  }
}

TEST(DefectSampler, CellCategoriesDominateTheMix) {
  // Per-cell sites outnumber per-row/column sites by construction; the
  // sampled population must reflect that.
  DefectSampler sampler(extracted_population(), FabModel{}, block_2x1());
  Rng rng(29);
  int cell_local = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const Defect d = sampler.sample(rng);
    const bool is_cell =
        (d.kind == DefectKind::Bridge &&
         (d.bridge_category == BridgeCategory::CellTrueFalse ||
          d.bridge_category == BridgeCategory::CellNodeBitline ||
          d.bridge_category == BridgeCategory::CellNodeVdd ||
          d.bridge_category == BridgeCategory::CellNodeGnd ||
          d.bridge_category == BridgeCategory::CellGateOxide)) ||
        (d.kind == DefectKind::Open &&
         d.open_category == OpenCategory::CellAccess);
    if (is_cell) ++cell_local;
  }
  EXPECT_GT(cell_local, n / 2);
}

}  // namespace
}  // namespace memstress::defects
