#include "defects/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace memstress::defects {
namespace {

TEST(FabModel, BridgeBinsSumToOne) {
  const FabModel fab;
  double total = 0.0;
  for (const auto& bin : fab.bridge_bins) total += bin.probability;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(FabModel, BridgeBinsAreLowOhmicHeavy) {
  const FabModel fab;
  ASSERT_GE(fab.bridge_bins.size(), 2u);
  EXPECT_GT(fab.bridge_bins.front().probability,
            fab.bridge_bins.back().probability);
}

TEST(FabModel, BridgeSamplesArePositive) {
  FabModel fab;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(fab.sample_bridge_resistance(rng), 0.0);
}

TEST(FabModel, BridgeSamplesMostlyLowOhmic) {
  FabModel fab;
  Rng rng(2);
  int below_10k = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i)
    if (fab.sample_bridge_resistance(rng) < 10e3) ++below_10k;
  EXPECT_GT(below_10k, n / 2);
}

TEST(FabModel, OpenSamplesRespectRange) {
  FabModel fab;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double r = fab.sample_open_resistance(rng);
    EXPECT_GE(r, fab.open_min_ohms);
    EXPECT_LT(r, fab.open_max_ohms);
  }
}

TEST(FabModel, GoxSamplesRespectRanges) {
  FabModel fab;
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double r = fab.sample_gox_resistance(rng);
    EXPECT_GE(r, fab.gox_r_min);
    EXPECT_LT(r, fab.gox_r_max);
    const double vbd = fab.sample_gox_vbd(rng);
    EXPECT_GE(vbd, fab.gox_vbd_min);
    EXPECT_LT(vbd, fab.gox_vbd_max);
  }
}

TEST(FabModel, YieldIsPoissonInArea) {
  FabModel fab;
  const double y1 = fab.yield(1e6);
  const double y2 = fab.yield(2e6);
  EXPECT_NEAR(y2, y1 * y1, 1e-12);
  EXPECT_NEAR(fab.yield(0.0), 1.0, 1e-12);
}

TEST(FabModel, ExpectedDefectsLinearInArea) {
  FabModel fab;
  EXPECT_NEAR(fab.expected_defects(2e6), 2.0 * fab.expected_defects(1e6), 1e-12);
  EXPECT_THROW(fab.expected_defects(-1.0), Error);
}

TEST(FabModel, YieldMatchesExpectedDefects) {
  FabModel fab;
  const double area = 5e6;
  EXPECT_NEAR(fab.yield(area), std::exp(-fab.expected_defects(area)), 1e-12);
}

}  // namespace
}  // namespace memstress::defects
