#include "study/study.hpp"

#include <gtest/gtest.h>

#include "layout/sram_layout.hpp"
#include "util/error.hpp"

namespace memstress::study {
namespace {

using defects::Defect;
using defects::DefectKind;
using estimator::DbEntry;
using estimator::DetectabilityDb;
using layout::BridgeCategory;
using layout::OpenCategory;

/// Synthetic DB in which detectability is a pure function of category:
///   CellTrueFalse bridges  -> VLV only
///   CellAccess opens       -> Vmax only
///   SenseOut opens         -> at-speed only
///   CellNodeVdd bridges    -> detected nowhere (escapes)
///   CellNodeGnd bridges    -> detected everywhere (standard fails)
DetectabilityDb rule_db() {
  DetectabilityDb db;
  auto add_rule = [&db](DefectKind kind, int category,
                        auto&& detected_fn) {
    for (const double vdd : {1.0, 1.65, 1.8, 1.95}) {
      for (const double period : {100e-9, 25e-9, 15e-9}) {
        DbEntry e;
        e.kind = kind;
        e.category = category;
        e.resistance = 1e4;
        e.vdd = vdd;
        e.period = period;
        e.detected = detected_fn(vdd, period);
        db.add(e);
      }
    }
  };
  add_rule(DefectKind::Bridge, static_cast<int>(BridgeCategory::CellTrueFalse),
           [](double vdd, double) { return vdd < 1.2; });
  add_rule(DefectKind::Open, static_cast<int>(OpenCategory::CellAccess),
           [](double vdd, double) { return vdd > 1.9; });
  add_rule(DefectKind::Open, static_cast<int>(OpenCategory::SenseOut),
           [](double, double period) { return period < 20e-9; });
  add_rule(DefectKind::Bridge, static_cast<int>(BridgeCategory::CellNodeVdd),
           [](double, double) { return false; });
  add_rule(DefectKind::Bridge, static_cast<int>(BridgeCategory::CellNodeGnd),
           [](double, double) { return true; });
  return db;
}

Defect bridge_of(BridgeCategory category) {
  Defect d;
  d.kind = DefectKind::Bridge;
  d.bridge_category = category;
  d.net_a = "x";
  d.net_b = "y";
  d.resistance = 1e4;
  return d;
}

Defect open_of(OpenCategory category) {
  Defect d;
  d.kind = DefectKind::Open;
  d.open_category = category;
  d.net_a = "j";
  d.resistance = 1e4;
  return d;
}

TEST(EvaluateDevice, CleanDeviceHasNoFlags) {
  const DeviceOutcome out = evaluate_device({}, StudyConfig{}, rule_db());
  EXPECT_EQ(out.defect_count, 0);
  EXPECT_FALSE(out.standard_fail);
  EXPECT_FALSE(out.interesting());
  EXPECT_FALSE(out.escape);
}

TEST(EvaluateDevice, VlvOnlyDefectIsInteresting) {
  const DeviceOutcome out = evaluate_device(
      {bridge_of(BridgeCategory::CellTrueFalse)}, StudyConfig{}, rule_db());
  EXPECT_TRUE(out.vlv_fail);
  EXPECT_FALSE(out.standard_fail);
  EXPECT_FALSE(out.vmax_fail);
  EXPECT_FALSE(out.atspeed_fail);
  EXPECT_TRUE(out.interesting());
}

TEST(EvaluateDevice, VmaxOnlyDefectIsInteresting) {
  // The paper's Chip-2: passes the standard (Vmin/Vnom) test, fails only
  // the Vmax stress screen.
  const DeviceOutcome out = evaluate_device(
      {open_of(OpenCategory::CellAccess)}, StudyConfig{}, rule_db());
  EXPECT_TRUE(out.vmax_fail);
  EXPECT_FALSE(out.standard_fail);
  EXPECT_TRUE(out.interesting());
}

TEST(EvaluateDevice, AtSpeedOnlyDefectIsInteresting) {
  const DeviceOutcome out = evaluate_device(
      {open_of(OpenCategory::SenseOut)}, StudyConfig{}, rule_db());
  EXPECT_TRUE(out.atspeed_fail);
  EXPECT_FALSE(out.standard_fail);
  EXPECT_TRUE(out.interesting());
}

TEST(EvaluateDevice, UndetectableDefectIsAnEscape) {
  const DeviceOutcome out = evaluate_device(
      {bridge_of(BridgeCategory::CellNodeVdd)}, StudyConfig{}, rule_db());
  EXPECT_TRUE(out.escape);
  EXPECT_FALSE(out.interesting());
}

TEST(EvaluateDevice, MultipleDefectsCombine) {
  const DeviceOutcome out = evaluate_device(
      {bridge_of(BridgeCategory::CellTrueFalse), open_of(OpenCategory::SenseOut)},
      StudyConfig{}, rule_db());
  EXPECT_TRUE(out.vlv_fail);
  EXPECT_TRUE(out.atspeed_fail);
  EXPECT_FALSE(out.standard_fail);
  EXPECT_TRUE(out.interesting());
  EXPECT_EQ(out.defect_count, 2);
  EXPECT_EQ(out.defect_tags.size(), 2u);
}

TEST(VennCounts, TotalsAndRendering) {
  VennCounts venn;
  venn.vlv_only = 27;
  venn.vmax_only = 3;
  venn.atspeed_only = 3;
  venn.vlv_and_vmax = 2;
  venn.vlv_and_atspeed = 1;
  EXPECT_EQ(venn.total(), 36);
  const std::string text = venn.render();
  EXPECT_NE(text.find("27"), std::string::npos);
  EXPECT_NE(text.find("total interesting ... 36"), std::string::npos);
}

class StudyRunTest : public ::testing::Test {
 protected:
  defects::DefectSampler make_sampler() {
    const auto model = layout::generate_sram_layout(8, 8);
    sram::BlockSpec block;
    block.rows = 2;
    block.cols = 1;
    return defects::DefectSampler(
        defects::aggregate_sites(layout::extract_bridges(model),
                                 layout::extract_opens(model)),
        defects::FabModel{}, block);
  }
};

TEST_F(StudyRunTest, DeterministicForSameSeed) {
  // A permissive DB (everything detected everywhere) covers every category
  // the sampler can produce.
  DetectabilityDb db;
  for (int cat = 0; cat <= static_cast<int>(BridgeCategory::Other); ++cat)
    for (const double vdd : {1.0, 1.65, 1.8, 1.95})
      for (const double period : {100e-9, 25e-9, 15e-9}) {
        DbEntry e;
        e.kind = DefectKind::Bridge;
        e.category = cat;
        e.resistance = 1e4;
        e.vdd = vdd;
        e.period = period;
        e.detected = true;
        db.add(e);
      }
  for (int cat = 0; cat <= static_cast<int>(OpenCategory::Other); ++cat)
    for (const double vdd : {1.0, 1.65, 1.8, 1.95})
      for (const double period : {100e-9, 25e-9, 15e-9}) {
        DbEntry e;
        e.kind = DefectKind::Open;
        e.category = cat;
        e.resistance = 1e4;
        e.vdd = vdd;
        e.period = period;
        e.detected = true;
        db.add(e);
      }

  StudyConfig config;
  config.device_count = 500;
  config.seed = 77;
  const StudyResult a = run_study(config, db, make_sampler());
  const StudyResult b = run_study(config, db, make_sampler());
  EXPECT_EQ(a.defective, b.defective);
  EXPECT_EQ(a.standard_fails, b.standard_fails);
  EXPECT_EQ(a.venn.total(), b.venn.total());

  // With an everything-detected DB there are no escapes.
  EXPECT_EQ(a.escapes, 0);
  EXPECT_EQ(a.devices, 500);
  EXPECT_GT(a.defective, 0);
}

TEST_F(StudyRunTest, RejectsEmptyConfig) {
  StudyConfig config;
  config.device_count = 0;
  EXPECT_THROW(run_study(config, rule_db(), make_sampler()), Error);
}

TEST(StudyConfig, ChipAreaMatchesVeqtor4) {
  StudyConfig config;
  EXPECT_NEAR(config.chip_area_um2(), 4.0 * 256 * 1024 * 1.1, 1.0);
}

TEST(StudyResult, SummaryMentionsKeyNumbers) {
  StudyResult result;
  result.devices = 11000;
  result.defective = 700;
  result.standard_fails = 650;
  result.venn.vlv_only = 27;
  result.escapes_standard_only = 33;
  result.escapes_with_vlv = 3;
  result.escapes_with_vmax = 27;
  EXPECT_EQ(result.caught_by_vlv(), 30);
  EXPECT_EQ(result.caught_by_vmax(), 6);
  const std::string text = result.summary();
  EXPECT_NE(text.find("11000"), std::string::npos);
  EXPECT_NE(text.find("Screen effectiveness ratio"), std::string::npos);
}

}  // namespace
}  // namespace memstress::study
