// run_study_range() + reduce_study(): the worker and merge halves of the
// distributed study. Shard layout must be invisible — the full serial seed
// schedule is drawn up front, so device d's RNG stream is the same whether
// it runs in a 1-device shard or the whole population at once.
#include <gtest/gtest.h>

#include <vector>

#include "defects/sampler.hpp"
#include "layout/sram_layout.hpp"
#include "study/study.hpp"
#include "util/error.hpp"

namespace memstress::study {
namespace {

using estimator::DbEntry;
using estimator::DetectabilityDb;
using layout::BridgeCategory;
using layout::OpenCategory;

defects::DefectSampler make_sampler() {
  const auto model = layout::generate_sram_layout(8, 8);
  sram::BlockSpec block;
  block.rows = 2;
  block.cols = 1;
  return defects::DefectSampler(
      defects::aggregate_sites(layout::extract_bridges(model),
                               layout::extract_opens(model)),
      defects::FabModel{}, block);
}

/// Every category at every stress corner, detectability split so all the
/// interesting outcome classes (standard fail, VLV-only, escapes) occur.
DetectabilityDb mixed_db() {
  DetectabilityDb db;
  const auto add = [&db](defects::DefectKind kind, int category, bool detected,
                         double vdd, double period) {
    DbEntry e;
    e.kind = kind;
    e.category = category;
    e.resistance = 1e4;
    e.vdd = vdd;
    e.period = period;
    e.detected = detected;
    db.add(e);
  };
  for (int cat = 0; cat <= static_cast<int>(BridgeCategory::Other); ++cat)
    for (const double vdd : {1.0, 1.65, 1.8, 1.95})
      for (const double period : {100e-9, 25e-9, 15e-9})
        add(defects::DefectKind::Bridge, cat, vdd < 1.2 || cat % 3 == 0, vdd,
            period);
  for (int cat = 0; cat <= static_cast<int>(OpenCategory::Other); ++cat)
    for (const double vdd : {1.0, 1.65, 1.8, 1.95})
      for (const double period : {100e-9, 25e-9, 15e-9})
        add(defects::DefectKind::Open, cat, vdd > 1.9 && cat % 2 == 0, vdd,
            period);
  return db;
}

StudyConfig small_config() {
  StudyConfig config;
  config.device_count = 400;
  config.seed = 99;
  config.threads = 1;
  return config;
}

void expect_equal(const StudyResult& a, const StudyResult& b) {
  EXPECT_EQ(a.devices, b.devices);
  EXPECT_EQ(a.defective, b.defective);
  EXPECT_EQ(a.standard_fails, b.standard_fails);
  EXPECT_EQ(a.escapes, b.escapes);
  EXPECT_EQ(a.escapes_standard_only, b.escapes_standard_only);
  EXPECT_EQ(a.escapes_with_vlv, b.escapes_with_vlv);
  EXPECT_EQ(a.escapes_with_vmax, b.escapes_with_vmax);
  EXPECT_EQ(a.escapes_with_atspeed, b.escapes_with_atspeed);
  EXPECT_EQ(a.venn.total(), b.venn.total());
  EXPECT_EQ(a.venn.vlv_only, b.venn.vlv_only);
  EXPECT_EQ(a.summary(), b.summary());
}

TEST(StudyRange, ShardedMasksReduceToTheFullRunResult) {
  const StudyConfig config = small_config();
  const DetectabilityDb db = mixed_db();
  const StudyResult full = run_study(config, db, make_sampler());
  ASSERT_GT(full.defective, 0);

  const std::size_t devices = static_cast<std::size_t>(config.device_count);
  for (const std::size_t shard : {std::size_t{1}, std::size_t{37}, devices}) {
    std::vector<int> masks;
    for (std::size_t begin = 0; begin < devices; begin += shard) {
      const std::size_t end = std::min(devices, begin + shard);
      const std::vector<int> part =
          run_study_range(config, db, make_sampler(), begin, end);
      EXPECT_EQ(part.size(), end - begin);
      masks.insert(masks.end(), part.begin(), part.end());
    }
    expect_equal(reduce_study(config, masks), full);
  }
}

TEST(StudyRange, UnresolvedDevicesAreExcludedFromEveryTally) {
  const StudyConfig config = small_config();
  const DetectabilityDb db = mixed_db();
  const std::size_t devices = static_cast<std::size_t>(config.device_count);

  std::vector<int> masks =
      run_study_range(config, db, make_sampler(), 0, devices);
  const StudyResult full = reduce_study(config, masks);
  // Drop the first 100 devices as an unresolved shard: the remaining
  // tallies must match a reduce over only the resolved suffix.
  std::vector<int> holes = masks;
  for (std::size_t d = 0; d < 100; ++d) holes[d] = -1;
  const StudyResult partial = reduce_study(config, holes);
  EXPECT_EQ(partial.devices, full.devices - 100);
  EXPECT_LE(partial.defective, full.defective);
  // Re-filling the holes restores the full result exactly.
  expect_equal(reduce_study(config, masks), full);
}

TEST(StudyRange, RejectsBadBoundsAndMaskCounts) {
  const StudyConfig config = small_config();
  const DetectabilityDb db = mixed_db();
  EXPECT_THROW(run_study_range(config, db, make_sampler(), 5, 4), Error);
  EXPECT_THROW(run_study_range(config, db, make_sampler(), 0,
                               static_cast<std::size_t>(config.device_count) +
                                   1),
               Error);
  EXPECT_THROW(reduce_study(config, std::vector<int>(3, 0)), Error);
  EXPECT_THROW(reduce_study(config, std::vector<int>(
                                        static_cast<std::size_t>(
                                            config.device_count),
                                        128)),
               Error);
}

}  // namespace
}  // namespace memstress::study
