// Checkpoint/resume for the Monte-Carlo study: a crashed run must resume to
// the identical StudyResult, a corrupt or foreign checkpoint must be
// rejected with a warning and a clean restart, and cancellation must flush
// a resumable snapshot.
#include "study/study.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "layout/sram_layout.hpp"
#include "util/chaos.hpp"
#include "util/checkpoint.hpp"
#include "util/log.hpp"

namespace memstress::study {
namespace {

namespace fs = std::filesystem;

using defects::DefectKind;
using estimator::DbEntry;
using estimator::DetectabilityDb;
using layout::BridgeCategory;
using layout::OpenCategory;

/// Rule DB covering every samplable category (same shape as the study
/// parallel-determinism fixture).
DetectabilityDb mixed_db() {
  DetectabilityDb db;
  const auto add_rule = [&db](DefectKind kind, int category,
                              auto&& detected_fn) {
    for (const double vdd : {1.0, 1.65, 1.8, 1.95}) {
      for (const double period : {100e-9, 25e-9, 15e-9}) {
        DbEntry e;
        e.kind = kind;
        e.category = category;
        e.resistance = 1e4;
        e.vdd = vdd;
        e.period = period;
        e.detected = detected_fn(vdd, period);
        db.add(e);
      }
    }
  };
  for (int cat = 0; cat <= static_cast<int>(BridgeCategory::Other); ++cat) {
    switch (cat % 3) {
      case 0:
        add_rule(DefectKind::Bridge, cat,
                 [](double vdd, double) { return vdd < 1.2; });
        break;
      case 1:
        add_rule(DefectKind::Bridge, cat, [](double, double) { return true; });
        break;
      default:
        add_rule(DefectKind::Bridge, cat, [](double, double) { return false; });
        break;
    }
  }
  for (int cat = 0; cat <= static_cast<int>(OpenCategory::Other); ++cat) {
    if (cat % 2 == 0)
      add_rule(DefectKind::Open, cat,
               [](double vdd, double) { return vdd > 1.9; });
    else
      add_rule(DefectKind::Open, cat,
               [](double, double period) { return period < 20e-9; });
  }
  return db;
}

defects::DefectSampler make_sampler() {
  const auto model = layout::generate_sram_layout(8, 8);
  sram::BlockSpec block;
  block.rows = 2;
  block.cols = 1;
  return defects::DefectSampler(
      defects::aggregate_sites(layout::extract_bridges(model),
                               layout::extract_opens(model)),
      defects::FabModel{}, block);
}

StudyConfig small_config() {
  StudyConfig config;
  config.device_count = 3000;
  config.seed = 2005;
  return config;
}

bool same_result(const StudyResult& a, const StudyResult& b) {
  return a.summary() == b.summary();
}

TEST(StudyCheckpoint, CompletedRunRemovesItsCheckpoint) {
  const DetectabilityDb db = mixed_db();
  const auto sampler = make_sampler();
  StudyConfig config = small_config();
  const StudyResult fresh = run_study(config, db, sampler);

  config.checkpoint_path =
      (fs::temp_directory_path() /
       ("memstress_study_done_" + std::to_string(::getpid()) + ".ckpt"))
          .string();
  config.checkpoint_interval = 500;
  const StudyResult checkpointed = run_study(config, db, sampler);
  EXPECT_TRUE(same_result(fresh, checkpointed));
  EXPECT_FALSE(fs::exists(config.checkpoint_path));
}

TEST(StudyCheckpoint, CorruptCheckpointWarnsAndRestartsScratch) {
  const DetectabilityDb db = mixed_db();
  const auto sampler = make_sampler();
  StudyConfig config = small_config();
  const StudyResult fresh = run_study(config, db, sampler);

  config.checkpoint_path =
      (fs::temp_directory_path() /
       ("memstress_study_corrupt_" + std::to_string(::getpid()) + ".ckpt"))
          .string();
  {
    std::ofstream out(config.checkpoint_path, std::ios::binary);
    out << "\x7f@!( this was never a checkpoint\n";
  }
  std::vector<std::string> warnings;
  set_log_sink([&warnings](LogLevel level, const std::string& message) {
    if (level == LogLevel::Warn) warnings.push_back(message);
  });
  const StudyResult resumed = run_study(config, db, sampler);
  set_log_sink({});
  EXPECT_TRUE(same_result(fresh, resumed));
  ASSERT_FALSE(warnings.empty());
  EXPECT_NE(warnings[0].find("restarting from scratch"), std::string::npos);
  fs::remove(config.checkpoint_path);
}

TEST(StudyCheckpoint, ForeignExperimentCheckpointRejected) {
  const DetectabilityDb db = mixed_db();
  const auto sampler = make_sampler();
  StudyConfig config = small_config();
  const StudyResult fresh = run_study(config, db, sampler);

  config.checkpoint_path =
      (fs::temp_directory_path() /
       ("memstress_study_foreign_" + std::to_string(::getpid()) + ".ckpt"))
          .string();
  // Structurally valid, but fingerprinted for a different experiment; the
  // masks claim every device is a clean pass, which would corrupt the
  // counts if it were accepted.
  std::string payload = "study 1 00000000 3000\n";
  for (int d = 0; d < 3000; ++d) payload += std::to_string(d) + " 0\n";
  checkpoint::save(config.checkpoint_path, payload);

  std::vector<std::string> warnings;
  set_log_sink([&warnings](LogLevel level, const std::string& message) {
    if (level == LogLevel::Warn) warnings.push_back(message);
  });
  const StudyResult resumed = run_study(config, db, sampler);
  set_log_sink({});
  EXPECT_TRUE(same_result(fresh, resumed));
  ASSERT_FALSE(warnings.empty());
  EXPECT_NE(warnings[0].find("does not match"), std::string::npos);
  fs::remove(config.checkpoint_path);
}

TEST(StudyCheckpoint, CancelledRunFlushesResumableSnapshot) {
  const DetectabilityDb db = mixed_db();
  const auto sampler = make_sampler();
  StudyConfig config = small_config();
  const StudyResult fresh = run_study(config, db, sampler);

  config.checkpoint_path =
      (fs::temp_directory_path() /
       ("memstress_study_cancel_" + std::to_string(::getpid()) + ".ckpt"))
          .string();
  config.checkpoint_interval = 100;
  config.threads = 4;
  // A pre-tripped token is the one deterministic cancellation: the job
  // unwinds before any device runs, and the flush-on-cancel path must still
  // leave a valid (empty-progress) snapshot behind.
  CancelToken token;
  token.request_cancel();
  config.cancel = &token;

  std::vector<std::string> warnings;
  set_log_sink([&warnings](LogLevel level, const std::string& message) {
    if (level == LogLevel::Warn) warnings.push_back(message);
  });
  EXPECT_THROW(run_study(config, db, sampler), CancelledError);
  set_log_sink({});
  ASSERT_FALSE(warnings.empty());
  EXPECT_NE(warnings[0].find("cancelled after 0 devices"), std::string::npos);
  EXPECT_NE(warnings[0].find(config.checkpoint_path), std::string::npos);
  ASSERT_TRUE(fs::exists(config.checkpoint_path));

  // The flushed snapshot resumes (here: restarts) to the fresh-run result
  // and is consumed on success.
  config.cancel = nullptr;
  const StudyResult resumed = run_study(config, db, sampler);
  EXPECT_TRUE(same_result(fresh, resumed));
  EXPECT_FALSE(fs::exists(config.checkpoint_path));
}

TEST(StudyCheckpointDeath, CrashedRunResumesToIdenticalResult) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const DetectabilityDb db = mixed_db();
  const auto sampler = make_sampler();
  StudyConfig config = small_config();
  // Fixed (pid-free) path: the parent must find the checkpoint the crashed
  // death-test child left behind.
  config.checkpoint_path =
      (fs::temp_directory_path() / "memstress_study_resume.ckpt").string();
  config.checkpoint_interval = 250;
  fs::remove(config.checkpoint_path);

  EXPECT_EXIT(
      {
        ::setenv("MEMSTRESS_CHAOS_CRASH", "study.checkpoint:3", 1);
        StudyConfig child = config;
        child.threads = 2;
        run_study(child, db, sampler);
        std::_Exit(0);  // not reached: the run must die at the crash point
      },
      testing::ExitedWithCode(chaos::kCrashExitCode), "simulated crash");
  ASSERT_TRUE(fs::exists(config.checkpoint_path));
  // A successful resume consumes the checkpoint, so stash the crashed
  // snapshot's bytes to replay the resume at a second thread count.
  std::string snapshot;
  {
    std::ifstream in(config.checkpoint_path, std::ios::binary);
    snapshot.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
  }
  ASSERT_FALSE(snapshot.empty());

  StudyConfig fresh_config = small_config();
  const StudyResult fresh = run_study(fresh_config, db, sampler);
  for (const int threads : {1, 8}) {
    {
      std::ofstream out(config.checkpoint_path, std::ios::binary);
      out << snapshot;
    }
    config.threads = threads;
    const StudyResult resumed = run_study(config, db, sampler);
    EXPECT_TRUE(same_result(fresh, resumed)) << "threads " << threads;
    EXPECT_FALSE(fs::exists(config.checkpoint_path)) << "threads " << threads;
  }
  fs::remove(config.checkpoint_path);
}

}  // namespace
}  // namespace memstress::study
