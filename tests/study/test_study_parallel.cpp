// The sharded Monte-Carlo study must produce the same counts at any thread
// count: each device owns an Rng child stream seeded serially from the study
// seed, so scheduling cannot leak into the results.
#include "study/study.hpp"

#include <gtest/gtest.h>

#include "layout/sram_layout.hpp"

namespace memstress::study {
namespace {

using defects::DefectKind;
using estimator::DbEntry;
using estimator::DetectabilityDb;
using layout::BridgeCategory;
using layout::OpenCategory;

/// Rule DB spanning every category the sampler can emit, with a mix of
/// standard fails, stress-only fails and escapes so every StudyResult
/// counter is exercised.
DetectabilityDb mixed_db() {
  DetectabilityDb db;
  const auto add_rule = [&db](DefectKind kind, int category,
                              auto&& detected_fn) {
    for (const double vdd : {1.0, 1.65, 1.8, 1.95}) {
      for (const double period : {100e-9, 25e-9, 15e-9}) {
        DbEntry e;
        e.kind = kind;
        e.category = category;
        e.resistance = 1e4;
        e.vdd = vdd;
        e.period = period;
        e.detected = detected_fn(vdd, period);
        db.add(e);
      }
    }
  };
  for (int cat = 0; cat <= static_cast<int>(BridgeCategory::Other); ++cat) {
    // Alternate: VLV-only, always-detected, never-detected.
    switch (cat % 3) {
      case 0:
        add_rule(DefectKind::Bridge, cat,
                 [](double vdd, double) { return vdd < 1.2; });
        break;
      case 1:
        add_rule(DefectKind::Bridge, cat, [](double, double) { return true; });
        break;
      default:
        add_rule(DefectKind::Bridge, cat, [](double, double) { return false; });
        break;
    }
  }
  for (int cat = 0; cat <= static_cast<int>(OpenCategory::Other); ++cat) {
    // Alternate: Vmax-only, at-speed-only.
    if (cat % 2 == 0)
      add_rule(DefectKind::Open, cat,
               [](double vdd, double) { return vdd > 1.9; });
    else
      add_rule(DefectKind::Open, cat,
               [](double, double period) { return period < 20e-9; });
  }
  return db;
}

defects::DefectSampler make_sampler() {
  const auto model = layout::generate_sram_layout(8, 8);
  sram::BlockSpec block;
  block.rows = 2;
  block.cols = 1;
  return defects::DefectSampler(
      defects::aggregate_sites(layout::extract_bridges(model),
                               layout::extract_opens(model)),
      defects::FabModel{}, block);
}

bool same_result(const StudyResult& a, const StudyResult& b) {
  return a.devices == b.devices && a.defective == b.defective &&
         a.standard_fails == b.standard_fails && a.escapes == b.escapes &&
         a.escapes_standard_only == b.escapes_standard_only &&
         a.escapes_with_vlv == b.escapes_with_vlv &&
         a.escapes_with_vmax == b.escapes_with_vmax &&
         a.escapes_with_atspeed == b.escapes_with_atspeed &&
         a.venn.vlv_only == b.venn.vlv_only &&
         a.venn.vmax_only == b.venn.vmax_only &&
         a.venn.atspeed_only == b.venn.atspeed_only &&
         a.venn.vlv_and_vmax == b.venn.vlv_and_vmax &&
         a.venn.vlv_and_atspeed == b.venn.vlv_and_atspeed &&
         a.venn.vmax_and_atspeed == b.venn.vmax_and_atspeed &&
         a.venn.all_three == b.venn.all_three;
}

TEST(StudyParallelDeterminism, CountsInvariantAcrossThreadCounts) {
  const DetectabilityDb db = mixed_db();
  const auto sampler = make_sampler();

  StudyConfig config;
  config.device_count = 4000;
  config.seed = 2005;

  config.threads = 1;
  const StudyResult serial = run_study(config, db, sampler);
  // The seed-2005 serial run is the baseline every thread count must hit.
  EXPECT_GT(serial.defective, 0);

  for (const int threads : {2, 8}) {
    config.threads = threads;
    const StudyResult parallel = run_study(config, db, sampler);
    EXPECT_TRUE(same_result(serial, parallel))
        << "thread count " << threads << " changed the study outcome:\n"
        << "serial:\n" << serial.summary() << "parallel:\n"
        << parallel.summary();
  }
}

TEST(StudyParallelDeterminism, RepeatedParallelRunsIdentical) {
  const DetectabilityDb db = mixed_db();
  const auto sampler = make_sampler();
  StudyConfig config;
  config.device_count = 2000;
  config.seed = 99;
  config.threads = 4;
  const StudyResult a = run_study(config, db, sampler);
  const StudyResult b = run_study(config, db, sampler);
  EXPECT_TRUE(same_result(a, b));
}

TEST(StudyParallelDeterminism, DifferentSeedsDiffer) {
  const DetectabilityDb db = mixed_db();
  const auto sampler = make_sampler();
  StudyConfig config;
  config.device_count = 2000;
  config.threads = 4;
  config.seed = 1;
  const StudyResult a = run_study(config, db, sampler);
  config.seed = 2;
  const StudyResult b = run_study(config, db, sampler);
  EXPECT_FALSE(same_result(a, b));
}

}  // namespace
}  // namespace memstress::study
