#include "study/diagnose.hpp"

#include <gtest/gtest.h>

#include "march/library.hpp"

namespace memstress::study {
namespace {

using march::FailLog;
using march::FailRecord;
using march::MarchTest;

FailRecord fail_at(int row, int col, bool expected, int element = 1) {
  FailRecord f;
  f.cycle = 10;
  f.element = element;
  f.row = row;
  f.col = col;
  f.expected = expected;
  f.observed = !expected;
  return f;
}

estimator::CornerOutcomes vlv_only() {
  estimator::CornerOutcomes c;
  c.vlv = true;
  return c;
}

estimator::CornerOutcomes vmax_only() {
  estimator::CornerOutcomes c;
  c.vmax = true;
  return c;
}

estimator::CornerOutcomes atspeed_only() {
  estimator::CornerOutcomes c;
  c.at_speed = true;
  return c;
}

estimator::CornerOutcomes everywhere() {
  estimator::CornerOutcomes c;
  c.vlv = c.vmin = c.vnom = c.vmax = c.at_speed = true;
  return c;
}

TEST(DiagnoseBitmap, CleanLogIsNone) {
  const FailLog log;
  const Diagnosis d = diagnose_bitmap(log, march::test_11n(), 8, 8);
  EXPECT_EQ(d.defect_class, DefectClass::None);
}

TEST(DiagnoseBitmap, SingleCellPolarity) {
  FailLog log;
  log.record(fail_at(3, 4, false));
  log.record(fail_at(3, 4, false, 2));
  const Diagnosis d = diagnose_bitmap(log, march::test_11n(), 8, 8);
  EXPECT_EQ(d.defect_class, DefectClass::StuckCell);
  EXPECT_EQ(d.suspect_row, 3);
  EXPECT_EQ(d.suspect_col, 4);
  EXPECT_TRUE(d.reads_of_zero_fail);
  EXPECT_FALSE(d.reads_of_one_fail);
}

TEST(DiagnoseBitmap, FullRowSignature) {
  FailLog log;
  for (int c = 0; c < 8; ++c) log.record(fail_at(2, c, true));
  const Diagnosis d = diagnose_bitmap(log, march::test_11n(), 8, 8);
  EXPECT_EQ(d.defect_class, DefectClass::RowDefect);
  EXPECT_EQ(d.suspect_row, 2);
}

TEST(DiagnoseBitmap, FullColumnSignature) {
  FailLog log;
  for (int r = 0; r < 8; ++r) log.record(fail_at(r, 5, true));
  const Diagnosis d = diagnose_bitmap(log, march::test_11n(), 8, 8);
  EXPECT_EQ(d.defect_class, DefectClass::ColumnDefect);
  EXPECT_EQ(d.suspect_col, 5);
}

TEST(DiagnoseBitmap, TwoCellCoupling) {
  FailLog log;
  log.record(fail_at(1, 1, true));
  log.record(fail_at(2, 2, true));
  const Diagnosis d = diagnose_bitmap(log, march::test_11n(), 8, 8);
  EXPECT_EQ(d.defect_class, DefectClass::Coupling);
}

TEST(DiagnoseBitmap, ScatteredIsGross) {
  FailLog log;
  log.record(fail_at(0, 0, true));
  log.record(fail_at(3, 5, false));
  log.record(fail_at(7, 2, true));
  log.record(fail_at(4, 6, false));
  const Diagnosis d = diagnose_bitmap(log, march::test_11n(), 8, 8);
  EXPECT_EQ(d.defect_class, DefectClass::Gross);
}

TEST(Diagnose, Chip1SignatureIsVlvCellBridge) {
  FailLog log;
  log.record(fail_at(3, 4, false));
  const Diagnosis d = diagnose(log, march::test_11n(), 8, 8, vlv_only());
  EXPECT_EQ(d.defect_class, DefectClass::CellBridgeVlv);
  EXPECT_NE(d.rationale.find("Chip-1"), std::string::npos);
}

TEST(Diagnose, Chip2SignatureIsVmaxCellOpen) {
  FailLog log;
  log.record(fail_at(3, 4, false));
  const Diagnosis d = diagnose(log, march::test_11n(), 8, 8, vmax_only());
  EXPECT_EQ(d.defect_class, DefectClass::CellOpenVmax);
  EXPECT_NE(d.rationale.find("Chip-2"), std::string::npos);
}

TEST(Diagnose, Chip3SignatureIsMatrixDelay) {
  FailLog log;
  log.record(fail_at(3, 4, false));
  const Diagnosis d = diagnose(log, march::test_11n(), 8, 8, atspeed_only());
  EXPECT_EQ(d.defect_class, DefectClass::MatrixDelay);
}

TEST(Diagnose, Chip4SignatureIsPeripheryDelay) {
  FailLog log;
  for (int r = 0; r < 8; ++r) log.record(fail_at(r, 5, true));
  const Diagnosis d = diagnose(log, march::test_11n(), 8, 8, atspeed_only());
  EXPECT_EQ(d.defect_class, DefectClass::PeripheryDelay);
}

TEST(Diagnose, HardFaultStaysStuckCell) {
  FailLog log;
  log.record(fail_at(3, 4, false));
  const Diagnosis d = diagnose(log, march::test_11n(), 8, 8, everywhere());
  EXPECT_EQ(d.defect_class, DefectClass::StuckCell);
}

TEST(Diagnose, RationaleListsStressCorners) {
  FailLog log;
  log.record(fail_at(0, 0, false));
  const Diagnosis d = diagnose(log, march::test_11n(), 8, 8, vlv_only());
  EXPECT_NE(d.rationale.find("VLV"), std::string::npos);
}

TEST(Diagnose, EndToEndOnARealFailLog) {
  // Drive a behavioral memory with a VLV-only stuck-at and check the whole
  // chain: march -> fail log -> diagnosis.
  sram::BehavioralSram mem(8, 8);
  sram::InjectedFault f;
  f.type = sram::FaultType::StuckAt1;
  f.row = 5;
  f.col = 6;
  f.envelope = sram::FailureEnvelope::low_voltage(1.2);
  mem.add_fault(f);
  mem.set_condition({1.0, 100e-9});
  const FailLog log = march::run_march(mem, march::test_11n());
  ASSERT_FALSE(log.passed());
  const Diagnosis d = diagnose(log, march::test_11n(), 8, 8, vlv_only());
  EXPECT_EQ(d.defect_class, DefectClass::CellBridgeVlv);
  EXPECT_EQ(d.suspect_row, 5);
  EXPECT_EQ(d.suspect_col, 6);
}

TEST(DefectClassNames, AreDistinct) {
  EXPECT_STREQ(defect_class_name(DefectClass::CellBridgeVlv), "cell-bridge-vlv");
  EXPECT_STREQ(defect_class_name(DefectClass::PeripheryDelay), "periphery-delay");
}

}  // namespace
}  // namespace memstress::study
