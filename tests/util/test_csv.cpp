#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/error.hpp"

namespace memstress {
namespace {

TEST(CsvWriter, WritesHeaderAndRows) {
  CsvWriter csv({"a", "b"});
  csv.add_row({"1", "2"});
  EXPECT_EQ(csv.to_string(), "a,b\n1,2\n");
}

TEST(CsvWriter, QuotesSpecialCharacters) {
  CsvWriter csv({"text"});
  csv.add_row({"has,comma"});
  csv.add_row({"has\"quote"});
  csv.add_row({"has\nnewline"});
  EXPECT_EQ(csv.to_string(),
            "text\n\"has,comma\"\n\"has\"\"quote\"\n\"has\nnewline\"\n");
}

TEST(CsvWriter, RejectsArityMismatch) {
  CsvWriter csv({"a", "b"});
  EXPECT_THROW(csv.add_row({"1"}), Error);
}

TEST(CsvRoundTrip, PreservesContent) {
  CsvWriter csv({"name", "value"});
  csv.add_row({"plain", "1"});
  csv.add_row({"com,ma", "2"});
  csv.add_row({"qu\"ote", "3"});
  csv.add_row({"new\nline", "4"});
  const CsvContent parsed = parse_csv(csv.to_string());
  ASSERT_EQ(parsed.header, (std::vector<std::string>{"name", "value"}));
  ASSERT_EQ(parsed.rows.size(), 4u);
  EXPECT_EQ(parsed.rows[1][0], "com,ma");
  EXPECT_EQ(parsed.rows[2][0], "qu\"ote");
  EXPECT_EQ(parsed.rows[3][0], "new\nline");
}

TEST(CsvParse, ToleratesCrlf) {
  const CsvContent parsed = parse_csv("a,b\r\n1,2\r\n");
  ASSERT_EQ(parsed.rows.size(), 1u);
  EXPECT_EQ(parsed.rows[0][1], "2");
}

TEST(CsvParse, HandlesMissingTrailingNewline) {
  const CsvContent parsed = parse_csv("a,b\n1,2");
  ASSERT_EQ(parsed.rows.size(), 1u);
  EXPECT_EQ(parsed.rows[0][0], "1");
}

TEST(CsvParse, RejectsUnterminatedQuote) {
  EXPECT_THROW(parse_csv("a\n\"oops"), Error);
}

TEST(CsvParse, RejectsEmptyInput) {
  EXPECT_THROW(parse_csv(""), Error);
}

TEST(CsvFile, SaveAndLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/memstress_csv_test.csv";
  CsvWriter csv({"k", "v"});
  csv.add_row({"x", "42"});
  csv.save(path);
  const CsvContent loaded = load_csv(path);
  ASSERT_EQ(loaded.rows.size(), 1u);
  EXPECT_EQ(loaded.rows[0][1], "42");
  std::remove(path.c_str());
}

TEST(CsvFile, LoadMissingFileThrows) {
  EXPECT_THROW(load_csv("/nonexistent/definitely/not/here.csv"), Error);
}

}  // namespace
}  // namespace memstress
