#include "util/trace.hpp"

#include <gtest/gtest.h>

#include "util/metrics.hpp"
#include "util/parallel.hpp"

namespace memstress::trace {
namespace {

class MetricsGuard {
 public:
  MetricsGuard() {
    metrics::set_enabled(true);
    metrics::reset();
  }
  ~MetricsGuard() {
    metrics::reset();
    metrics::set_enabled(false);
  }
};

const NodeSnapshot* find(const std::vector<NodeSnapshot>& nodes,
                         const std::string& name) {
  for (const auto& node : nodes)
    if (node.name == name) return &node;
  return nullptr;
}

TEST(TraceSpans, DisabledSpansRecordNothing) {
  MetricsGuard guard;
  metrics::set_enabled(false);
  { Span span("test.disabled"); }
  EXPECT_TRUE(snapshot().empty());
}

TEST(TraceSpans, NestingBuildsATree) {
  MetricsGuard guard;
  {
    Span outer("outer");
    { Span inner("inner"); }
    { Span inner("inner"); }
  }
  const auto roots = snapshot();
  const NodeSnapshot* outer = find(roots, "outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 1);
  EXPECT_GE(outer->total_s, 0.0);
  const NodeSnapshot* inner = find(outer->children, "inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 2);  // same path aggregates
  EXPECT_LE(inner->total_s, outer->total_s);
}

TEST(TraceSpans, SiblingsStaySeparate) {
  MetricsGuard guard;
  { Span a("sibling_a"); }
  { Span b("sibling_b"); }
  const auto roots = snapshot();
  EXPECT_NE(find(roots, "sibling_a"), nullptr);
  EXPECT_NE(find(roots, "sibling_b"), nullptr);
}

TEST(TraceSpans, ResetZeroesTheTree) {
  MetricsGuard guard;
  { Span span("reset_me"); }
  reset();
  EXPECT_TRUE(snapshot().empty());
  { Span span("reset_me"); }
  const auto roots = snapshot();
  const NodeSnapshot* node = find(roots, "reset_me");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->count, 1);
}

TEST(TraceParallel, WorkerSpansNestUnderTheLaunchingSpan) {
  MetricsGuard guard;
  {
    Span outer("parallel_outer");
    parallel_for(16, [](std::size_t) { Span task("task"); }, 4);
  }
  const auto roots = snapshot();
  const NodeSnapshot* outer = find(roots, "parallel_outer");
  ASSERT_NE(outer, nullptr);
  const NodeSnapshot* task = find(outer->children, "task");
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(task->count, 16);
  // Nothing leaked to the top level.
  EXPECT_EQ(find(roots, "task"), nullptr);
}

TEST(TraceParallel, ContextGuardRestoresOnExit) {
  MetricsGuard guard;
  {
    Span outer("guard_outer");
    void* ctx = current_context();
    EXPECT_NE(ctx, nullptr);
    {
      ContextGuard inner(nullptr);
      EXPECT_EQ(current_context(), nullptr);
    }
    EXPECT_EQ(current_context(), ctx);
  }
  EXPECT_EQ(current_context(), nullptr);
}

TEST(TraceParallel, SerialFallbackKeepsNesting) {
  MetricsGuard guard;
  {
    Span outer("serial_outer");
    parallel_for(4, [](std::size_t) { Span task("task"); }, 1);
  }
  const auto roots = snapshot();
  const NodeSnapshot* outer = find(roots, "serial_outer");
  ASSERT_NE(outer, nullptr);
  const NodeSnapshot* task = find(outer->children, "task");
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(task->count, 4);
}

}  // namespace
}  // namespace memstress::trace
