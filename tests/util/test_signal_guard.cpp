#include "util/signal_guard.hpp"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>

#include "util/cancel.hpp"

namespace memstress {
namespace {

TEST(SignalGuard, PassesThroughTheBodysReturnValue) {
  EXPECT_EQ(signal_guard::run([] { return 0; }, {}), 0);
  EXPECT_EQ(signal_guard::run([] { return 7; }, {}), 7);
}

TEST(SignalGuard, CancelledErrorMapsToExitCode130) {
  const int rc = signal_guard::run(
      [&]() -> int { throw CancelledError("synthetic cancellation"); }, {});
  EXPECT_EQ(rc, signal_guard::kInterruptExitCode);
  EXPECT_EQ(rc, 130);
}

TEST(SignalGuard, NonCancellationErrorsPropagate) {
  // Only the cooperative-cancellation unwind is absorbed; real failures
  // must keep crashing loudly.
  EXPECT_THROW(
      signal_guard::run([&]() -> int { throw Error("genuine failure"); }, {}),
      Error);
}

// The real thing, end to end, in a death-test child so the parent process
// keeps its SIGINT disposition and an untripped cancel token: raise(SIGINT)
// -> util/cancel's handler trips the process token -> the body unwinds with
// CancelledError -> run() prints the report + resume hint and returns 130.
TEST(SignalGuard, SigintDrivesTheFullPathToExit130) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_EXIT(
      {
        const int rc = signal_guard::run(
            [&]() -> int {
              std::raise(SIGINT);
              if (cancel::process_token().cancelled())
                throw CancelledError("stopped at a checkpoint");
              return 0;
            },
            {"rerun with the same settings to resume."});
        std::_Exit(rc);
      },
      testing::ExitedWithCode(130), "interrupted: stopped at a checkpoint");
}

TEST(SignalGuard, ResumeHintIsPrintedOnInterrupt) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_EXIT(
      {
        const int rc = signal_guard::run(
            [&]() -> int { throw CancelledError("x"); },
            {"partial progress was checkpointed."});
        std::_Exit(rc);
      },
      testing::ExitedWithCode(130), "partial progress was checkpointed");
}

}  // namespace
}  // namespace memstress
