#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace memstress {
namespace {

TEST(Rng, IsDeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformStaysInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, LogUniformCoversDecadesEvenly) {
  Rng rng(3);
  // Count samples per decade over [1, 1e4): should be ~25% each.
  std::vector<int> decade_count(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.log_uniform(1.0, 1e4);
    ASSERT_GE(v, 1.0);
    ASSERT_LT(v, 1e4);
    ++decade_count[static_cast<int>(std::log10(v))];
  }
  for (int d = 0; d < 4; ++d)
    EXPECT_NEAR(decade_count[d] / static_cast<double>(n), 0.25, 0.02) << "decade " << d;
}

TEST(Rng, LogUniformRejectsBadRange) {
  Rng rng(3);
  EXPECT_THROW(rng.log_uniform(0.0, 1.0), Error);
  EXPECT_THROW(rng.log_uniform(2.0, 1.0), Error);
}

TEST(Rng, NormalMomentsAreSane) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScalesByMeanAndStddev) {
  Rng rng(14);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, BelowIsUnbiasedOverSmallRange) {
  Rng rng(5);
  std::vector<int> count(5, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++count[rng.below(5)];
  for (int c : count) EXPECT_NEAR(c / static_cast<double>(n), 0.2, 0.02);
}

TEST(Rng, BelowRejectsZero) {
  Rng rng(5);
  EXPECT_THROW(rng.below(0), Error);
}

TEST(Rng, PoissonMatchesMeanSmall) {
  Rng rng(17);
  const int n = 50000;
  long total = 0;
  for (int i = 0; i < n; ++i) total += rng.poisson(2.5);
  EXPECT_NEAR(total / static_cast<double>(n), 2.5, 0.05);
}

TEST(Rng, PoissonMatchesMeanLarge) {
  Rng rng(18);
  const int n = 20000;
  long total = 0;
  for (int i = 0; i < n; ++i) total += rng.poisson(200.0);
  EXPECT_NEAR(total / static_cast<double>(n), 200.0, 1.0);
}

TEST(Rng, PoissonZeroMeanIsAlwaysZero) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(23);
  const std::vector<double> weights{1.0, 3.0, 6.0};
  std::vector<int> count(3, 0);
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++count[rng.weighted_index(weights)];
  EXPECT_NEAR(count[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(count[1] / static_cast<double>(n), 0.3, 0.015);
  EXPECT_NEAR(count[2] / static_cast<double>(n), 0.6, 0.015);
}

TEST(Rng, WeightedIndexSkipsZeroWeights) {
  Rng rng(29);
  const std::vector<double> weights{0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) EXPECT_EQ(rng.weighted_index(weights), 1u);
}

TEST(Rng, WeightedIndexRejectsDegenerateInput) {
  Rng rng(29);
  EXPECT_THROW(rng.weighted_index({}), Error);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), Error);
  EXPECT_THROW(rng.weighted_index({1.0, -1.0}), Error);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (parent() == child()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

}  // namespace
}  // namespace memstress
