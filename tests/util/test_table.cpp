#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace memstress {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22222"});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("| name  | value |"), std::string::npos);
  EXPECT_NE(text.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(text.find("| b     | 22222 |"), std::string::npos);
}

TEST(TextTable, RowArityMustMatchHeader) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), Error);
}

TEST(TextTable, EmptyHeaderRejected) {
  EXPECT_THROW(TextTable({}), Error);
}

TEST(TextTable, CountsRows) {
  TextTable table({"x"});
  EXPECT_EQ(table.rows(), 0u);
  table.add_row({"1"});
  table.add_row({"2"});
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Format, FixedDigits) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(3.0, 0), "3");
  EXPECT_EQ(fmt_fixed(-1.005, 1), "-1.0");
}

TEST(Format, ResistanceEngineeringNotation) {
  EXPECT_EQ(fmt_resistance(20.0), "20 Ohm");
  EXPECT_EQ(fmt_resistance(1000.0), "1 kOhm");
  EXPECT_EQ(fmt_resistance(90e3), "90 kOhm");
  EXPECT_EQ(fmt_resistance(4e6), "4 MOhm");
  EXPECT_EQ(fmt_resistance(1.5e6), "1.5 MOhm");
}

TEST(Format, TimeEngineeringNotation) {
  EXPECT_EQ(fmt_time(15e-9), "15 ns");
  EXPECT_EQ(fmt_time(100e-9), "100 ns");
  EXPECT_EQ(fmt_time(2e-6), "2 us");
  EXPECT_EQ(fmt_time(1.0), "1 s");
  EXPECT_EQ(fmt_time(3e-12), "3 ps");
}

TEST(Format, RatioMatchesPaperStyle) {
  EXPECT_EQ(fmt_ratio(1.0), "1x");
  EXPECT_EQ(fmt_ratio(4.4), "4.4x");
  EXPECT_EQ(fmt_ratio(9.3), "9.3x");
  EXPECT_EQ(fmt_ratio(4.45), "4.45x");
}

TEST(Format, PercentFromFraction) {
  EXPECT_EQ(fmt_percent(0.9892), "98.92");
  EXPECT_EQ(fmt_percent(1.0), "100.00");
}

}  // namespace
}  // namespace memstress
