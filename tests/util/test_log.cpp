#include "util/log.hpp"

#include <gtest/gtest.h>

namespace memstress {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, DefaultLevelIsWarn) {
  // The library must stay quiet by default.
  EXPECT_EQ(log_level(), LogLevel::Warn);
}

TEST(Log, LevelIsSettableAndReadable) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Off);
  EXPECT_EQ(log_level(), LogLevel::Off);
}

TEST(Log, EmittersRespectThreshold) {
  // No crash and no observable side effects below the threshold; this
  // also exercises the variadic concat path.
  LogLevelGuard guard;
  set_log_level(LogLevel::Off);
  log_info("value = ", 42, ", name = ", "x");
  log_debug("debug ", 3.14);
  log_warn("warn ", true);
  set_log_level(LogLevel::Trace);
  testing::internal::CaptureStderr();
  log_info("hello ", 7);
  const std::string text = testing::internal::GetCapturedStderr();
  EXPECT_NE(text.find("[INFO] hello 7"), std::string::npos);
}

TEST(Log, MessageBelowLevelSuppressed) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Error);
  testing::internal::CaptureStderr();
  log_info("should not appear");
  log_warn("neither should this");
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
}

}  // namespace
}  // namespace memstress
