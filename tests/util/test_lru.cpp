#include "util/lru.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/metrics.hpp"

namespace memstress {
namespace {

using Outcome = ShardedLruCache::Outcome;

TEST(LruCache, PutThenGetRoundTrips) {
  ShardedLruCache cache(8);
  EXPECT_TRUE(cache.cache_enabled());
  EXPECT_EQ(cache.get("a"), std::nullopt);
  cache.put("a", "1");
  cache.put("b", "2");
  EXPECT_EQ(cache.get("a"), "1");
  EXPECT_EQ(cache.get("b"), "2");
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCache, PutRefreshesExistingValue) {
  ShardedLruCache cache(8);
  cache.put("a", "old");
  cache.put("a", "new");
  EXPECT_EQ(cache.get("a"), "new");
  EXPECT_EQ(cache.size(), 1u);
}

TEST(LruCache, EvictsLeastRecentlyUsedInOrder) {
  // One shard makes the global LRU order the shard order, so the eviction
  // sequence is fully deterministic.
  ShardedLruCache cache(3, /*shards=*/1);
  cache.put("a", "1");
  cache.put("b", "2");
  cache.put("c", "3");
  // Touch "a": "b" becomes the oldest.
  EXPECT_EQ(cache.get("a"), "1");
  cache.put("d", "4");
  EXPECT_EQ(cache.get("b"), std::nullopt);  // evicted
  EXPECT_EQ(cache.get("a"), "1");
  EXPECT_EQ(cache.get("c"), "3");
  EXPECT_EQ(cache.get("d"), "4");
  EXPECT_EQ(cache.stats().evictions, 1);
  cache.put("e", "5");
  // "a" was oldest after the touches above ("a","c","d" refreshed in that
  // order by the gets).
  EXPECT_EQ(cache.get("a"), std::nullopt);
}

TEST(LruCache, CapacityZeroBypassesEverything) {
  ShardedLruCache cache(0);
  EXPECT_FALSE(cache.cache_enabled());
  cache.put("a", "1");
  EXPECT_EQ(cache.get("a"), std::nullopt);
  EXPECT_EQ(cache.size(), 0u);
  int computes = 0;
  const auto result = cache.get_or_compute("a", [&] {
    ++computes;
    return std::string("fresh");
  });
  EXPECT_EQ(result.value, "fresh");
  EXPECT_EQ(result.outcome, Outcome::Bypassed);
  // Bypassed calls never memoize: every call computes.
  cache.get_or_compute("a", [&] {
    ++computes;
    return std::string("fresh");
  });
  EXPECT_EQ(computes, 2);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 0);
}

TEST(LruCache, ShardBudgetsSumToCapacity) {
  // 10 entries over the default shard count: the budgets must sum exactly
  // to the capacity, so filling with distinct keys never exceeds it.
  ShardedLruCache cache(10);
  EXPECT_EQ(cache.capacity(), 10u);
  EXPECT_GE(cache.shard_count(), 1u);
  for (int i = 0; i < 200; ++i)
    cache.put("key-" + std::to_string(i), "v");
  EXPECT_LE(cache.size(), 10u);
}

TEST(LruCache, ShardCountClampedToCapacity) {
  ShardedLruCache cache(2, /*shards=*/16);
  EXPECT_LE(cache.shard_count(), 2u);
}

TEST(LruCache, GetOrComputeCachesAndCountsOutcomes) {
  ShardedLruCache cache(8);
  int computes = 0;
  const auto first = cache.get_or_compute("k", [&] {
    ++computes;
    return std::string("value");
  });
  EXPECT_EQ(first.value, "value");
  EXPECT_EQ(first.outcome, Outcome::Computed);
  const auto second = cache.get_or_compute("k", [&] {
    ++computes;
    return std::string("value");
  });
  EXPECT_EQ(second.value, "value");
  EXPECT_EQ(second.outcome, Outcome::Hit);
  EXPECT_EQ(computes, 1);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.coalesced, 0);
}

TEST(LruCache, ClearDropsEntriesButKeepsStats) {
  ShardedLruCache cache(8);
  cache.put("a", "1");
  EXPECT_EQ(cache.get("a"), "1");
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.get("a"), std::nullopt);
  EXPECT_EQ(cache.stats().hits, 1);  // survived the clear
}

TEST(LruCache, MirrorsIntoMetricsCountersWhenPrefixed) {
  metrics::set_enabled(true);
  metrics::reset();
  ShardedLruCache cache(4, 1, "test.lru");
  cache.get_or_compute("k", [] { return std::string("v"); });
  cache.get_or_compute("k", [] { return std::string("v"); });
  EXPECT_EQ(metrics::counter("test.lru_misses").value(), 1);
  EXPECT_EQ(metrics::counter("test.lru_hits").value(), 1);
  metrics::reset();
  metrics::set_enabled(false);
}

TEST(LruSingleFlight, ConcurrentIdenticalRequestsComputeOnce) {
  ShardedLruCache cache(8);
  constexpr int kThreads = 8;
  std::atomic<int> computes{0};
  std::atomic<int> started{0};
  std::vector<std::thread> threads;
  std::vector<std::string> values(kThreads);
  std::vector<Outcome> outcomes(kThreads, Outcome::Bypassed);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      started.fetch_add(1);
      // Crude rendezvous so the requests overlap rather than serialize.
      while (started.load() < kThreads) std::this_thread::yield();
      const auto result = cache.get_or_compute("hot-key", [&] {
        computes.fetch_add(1);
        // A slow compute keeps the flight open long enough for the other
        // threads to pile onto it.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        return std::string("expensive-result");
      });
      values[static_cast<std::size_t>(t)] = result.value;
      outcomes[static_cast<std::size_t>(t)] = result.outcome;
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(computes.load(), 1) << "single-flight must compute exactly once";
  int computed = 0;
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(values[static_cast<std::size_t>(t)], "expensive-result");
    if (outcomes[static_cast<std::size_t>(t)] == Outcome::Computed) ++computed;
  }
  EXPECT_EQ(computed, 1);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits + stats.coalesced, kThreads - 1);
}

TEST(LruSingleFlight, ComputeFailurePropagatesAndPoisonsNothing) {
  ShardedLruCache cache(8);
  EXPECT_THROW(cache.get_or_compute(
                   "k", [&]() -> std::string { throw Error("transient"); }),
               Error);
  // The failure was not cached: the next call computes and succeeds.
  const auto result =
      cache.get_or_compute("k", [] { return std::string("recovered"); });
  EXPECT_EQ(result.value, "recovered");
  EXPECT_EQ(result.outcome, Outcome::Computed);
  EXPECT_EQ(cache.get("k"), "recovered");
}

TEST(LruSingleFlight, FailurePropagatesToEveryWaiter) {
  ShardedLruCache cache(8);
  constexpr int kThreads = 4;
  std::atomic<int> computes{0};
  std::atomic<int> failures{0};
  std::atomic<int> started{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      started.fetch_add(1);
      while (started.load() < kThreads) std::this_thread::yield();
      try {
        cache.get_or_compute("doomed", [&]() -> std::string {
          computes.fetch_add(1);
          std::this_thread::sleep_for(std::chrono::milliseconds(30));
          throw Error("injected failure");
        });
      } catch (const Error&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // Either all threads coalesced onto one failing flight, or late arrivals
  // started fresh flights after the first erase — both are correct; what
  // matters is every caller saw the error and nothing got cached.
  EXPECT_GE(computes.load(), 1);
  EXPECT_EQ(failures.load(), kThreads);
  EXPECT_EQ(cache.get("doomed"), std::nullopt);
}

TEST(LruParallel, HammerSmallCacheFromManyThreads) {
  // Tiny capacity + many threads + overlapping key set: constant hits,
  // misses, coalesces and evictions all at once. Run under TSan via
  // check_parallel; correctness here is "right value for every key".
  ShardedLruCache cache(4, /*shards=*/2);
  constexpr int kThreads = 8;
  constexpr int kIterations = 500;
  std::atomic<long> wrong_values{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        const int k = (t + i) % 12;
        const std::string key = "key-" + std::to_string(k);
        const std::string want = "value-" + std::to_string(k);
        const auto result =
            cache.get_or_compute(key, [&] { return want; });
        if (result.value != want) wrong_values.fetch_add(1);
        if (i % 50 == t) cache.clear();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(wrong_values.load(), 0);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.coalesced,
            static_cast<long long>(kThreads) * kIterations);
  EXPECT_LE(cache.size(), 4u);
}

}  // namespace
}  // namespace memstress
