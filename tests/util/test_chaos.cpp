#include "util/chaos.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>
#include <string>

namespace memstress::chaos {
namespace {

/// Restores the programmatic chaos state after each test.
class ChaosGuard {
 public:
  ~ChaosGuard() { disable(); }
};

TEST(Chaos, DisabledByDefaultAndNeverFails) {
  ChaosGuard guard;
  disable();
  EXPECT_FALSE(enabled());
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_FALSE(should_fail("test.site", i));
    EXPECT_NO_THROW(maybe_fail("test.site", i));
  }
}

TEST(Chaos, RateOneAlwaysFailsRateZeroNever) {
  ChaosGuard guard;
  configure(1.0, 42);
  EXPECT_TRUE(enabled());
  for (std::uint64_t i = 0; i < 50; ++i) EXPECT_TRUE(should_fail("s", i));
  EXPECT_THROW(maybe_fail("s", 7), ChaosError);

  configure(0.0, 42);
  EXPECT_FALSE(enabled());
  for (std::uint64_t i = 0; i < 50; ++i) EXPECT_FALSE(should_fail("s", i));
}

TEST(Chaos, VerdictsAreDeterministicForFixedSeed) {
  ChaosGuard guard;
  configure(0.5, 7);
  std::vector<bool> first;
  for (std::uint64_t i = 0; i < 200; ++i)
    first.push_back(should_fail("determinism", i));
  for (int repeat = 0; repeat < 3; ++repeat)
    for (std::uint64_t i = 0; i < 200; ++i)
      EXPECT_EQ(should_fail("determinism", i), first[i]) << "index " << i;
  // A 0.5 rate over 200 indices lands strictly inside (0, 200).
  long failures = 0;
  for (const bool f : first) failures += f ? 1 : 0;
  EXPECT_GT(failures, 0);
  EXPECT_LT(failures, 200);
}

TEST(Chaos, DistinctSitesSeedsAndAttemptsDrawDistinctStreams) {
  ChaosGuard guard;
  configure(0.5, 7);
  const auto stream = [](const char* site, std::uint64_t attempt) {
    std::string bits;
    for (std::uint64_t i = 0; i < 64; ++i)
      bits += should_fail(site, i, attempt) ? '1' : '0';
    return bits;
  };
  const std::string site_a = stream("site.a", 0);
  EXPECT_NE(site_a, stream("site.b", 0));
  // Retries re-roll: same site, next attempt, different verdict stream.
  EXPECT_NE(site_a, stream("site.a", 1));
  configure(0.5, 8);
  EXPECT_NE(site_a, stream("site.a", 0));
}

TEST(Chaos, ConfigureClampsRate) {
  ChaosGuard guard;
  configure(7.5, 1);
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_TRUE(should_fail("clamp", i));
  configure(-2.0, 1);
  EXPECT_FALSE(enabled());
}

TEST(Chaos, ErrorMessageNamesSiteIndexAndAttempt) {
  ChaosGuard guard;
  configure(1.0, 3);
  try {
    maybe_fail("engine.solve", 13, 2);
    FAIL() << "maybe_fail did not throw at rate 1.0";
  } catch (const ChaosError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("engine.solve"), std::string::npos);
    EXPECT_NE(what.find("13"), std::string::npos);
    EXPECT_NE(what.find("attempt 2"), std::string::npos);
  }
}

TEST(ChaosDeath, CrashPointHardExitsOnNthHit) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  // The crash config is parsed once per process from the environment; the
  // setenv runs inside the death-test statement so only the re-executed
  // child (which parses lazily, at its first crash_point call) sees it.
  EXPECT_EXIT(
      {
        ::setenv("MEMSTRESS_CHAOS_CRASH", "ckpt.write:2", 1);
        crash_point("ckpt.write");    // hit 1: survives
        crash_point("other.site");    // different site: ignored
        crash_point("ckpt.write");    // hit 2: dies
        std::_Exit(0);                // never reached
      },
      testing::ExitedWithCode(kCrashExitCode), "simulated crash at ckpt.write");
}

TEST(ChaosDeath, CrashPointInertWithoutEnv) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_EXIT(
      {
        ::unsetenv("MEMSTRESS_CHAOS_CRASH");
        for (int i = 0; i < 10; ++i) crash_point("ckpt.write");
        std::_Exit(0);
      },
      testing::ExitedWithCode(0), "");
}

}  // namespace
}  // namespace memstress::chaos
