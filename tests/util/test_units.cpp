#include "util/units.hpp"

#include <gtest/gtest.h>

namespace memstress {
namespace {

TEST(Units, PrefixValues) {
  EXPECT_DOUBLE_EQ(MEGA, 1e6);
  EXPECT_DOUBLE_EQ(KILO * MILLI, 1.0);
  EXPECT_DOUBLE_EQ(GIGA * NANO, 1.0);
  EXPECT_DOUBLE_EQ(TERA * PICO, 1.0);
  EXPECT_DOUBLE_EQ(MICRO * MEGA, 1.0);
  EXPECT_DOUBLE_EQ(FEMTO, 1e-15);
}

TEST(Units, PeriodFrequencyRoundTrip) {
  EXPECT_DOUBLE_EQ(period_to_freq(100 * NANO), 10 * MEGA);
  EXPECT_DOUBLE_EQ(freq_to_period(50 * MEGA), 20 * NANO);
  for (const double period : {10e-9, 15e-9, 25e-9, 100e-9}) {
    EXPECT_DOUBLE_EQ(freq_to_period(period_to_freq(period)), period);
  }
}

TEST(Units, UsableInConstexprContext) {
  // Reciprocals of decimal constants are inexact in binary floating point;
  // the point of this test is only that the helpers are constexpr-evaluable
  // (use exactly representable powers of two).
  constexpr double freq = period_to_freq(0.5);
  static_assert(freq == 2.0);
  static_assert(freq_to_period(4.0) == 0.25);
  SUCCEED();
}

}  // namespace
}  // namespace memstress
