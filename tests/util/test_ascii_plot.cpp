#include "util/ascii_plot.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace memstress {
namespace {

ShmooGrid make_grid() {
  return ShmooGrid({1.0, 1.5, 2.0}, {10e-9, 20e-9, 30e-9, 40e-9});
}

TEST(ShmooGrid, StartsUntested) {
  const ShmooGrid grid = make_grid();
  for (std::size_t y = 0; y < grid.y_count(); ++y)
    for (std::size_t x = 0; x < grid.x_count(); ++x)
      EXPECT_EQ(grid.at(y, x), ShmooCell::Untested);
  EXPECT_TRUE(grid.all_pass());
  EXPECT_EQ(grid.fail_count(), 0u);
}

TEST(ShmooGrid, SetAndQueryCells) {
  ShmooGrid grid = make_grid();
  grid.set(0, 0, ShmooCell::Fail);
  grid.set(2, 3, ShmooCell::Pass);
  EXPECT_EQ(grid.at(0, 0), ShmooCell::Fail);
  EXPECT_EQ(grid.at(2, 3), ShmooCell::Pass);
  EXPECT_EQ(grid.fail_count(), 1u);
  EXPECT_FALSE(grid.all_pass());
}

TEST(ShmooGrid, AxesMustBeStrictlyIncreasing) {
  EXPECT_THROW(ShmooGrid({1.0, 1.0}, {1e-9}), Error);
  EXPECT_THROW(ShmooGrid({2.0, 1.0}, {1e-9}), Error);
  EXPECT_THROW(ShmooGrid({1.0}, {}), Error);
}

TEST(ShmooGrid, OutOfRangeAccessThrows) {
  ShmooGrid grid = make_grid();
  EXPECT_THROW(grid.set(3, 0, ShmooCell::Pass), Error);
  EXPECT_THROW((void)grid.at(0, 4), Error);
}

TEST(ShmooGrid, RenderShowsHighVoltageFirst) {
  ShmooGrid grid = make_grid();
  grid.set(2, 0, ShmooCell::Fail);  // 2.0 V row
  grid.set(0, 0, ShmooCell::Pass);  // 1.0 V row
  const std::string text = grid.render("title");
  const auto pos_high = text.find("2.00 V");
  const auto pos_low = text.find("1.00 V");
  ASSERT_NE(pos_high, std::string::npos);
  ASSERT_NE(pos_low, std::string::npos);
  EXPECT_LT(pos_high, pos_low);
  EXPECT_NE(text.find('X'), std::string::npos);
  EXPECT_NE(text.find('+'), std::string::npos);
}

TEST(ShmooGrid, RenderIncludesTitle) {
  const std::string text = make_grid().render("Chip-1 shmoo");
  EXPECT_EQ(text.rfind("Chip-1 shmoo", 0), 0u);
}

TEST(XySeries, RendersEveryPoint) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{10, 20, 40, 80};
  const std::string text = render_xy_series("t", "x", "y", xs, ys, false, 8);
  int stars = 0;
  for (char c : text)
    if (c == '*') ++stars;
  EXPECT_EQ(stars, 4);
}

TEST(XySeries, LogScaleHandlesDecades) {
  const std::vector<double> xs{1, 2, 3};
  const std::vector<double> ys{1e3, 1e5, 1e7};
  const std::string text = render_xy_series("t", "x", "y", xs, ys, true, 10);
  EXPECT_NE(text.find("log scale"), std::string::npos);
}

TEST(XySeries, RejectsMismatchedInput) {
  EXPECT_THROW(render_xy_series("t", "x", "y", {1}, {1, 2}, false), Error);
  EXPECT_THROW(render_xy_series("t", "x", "y", {}, {}, false), Error);
}

TEST(XySeries, ConstantSeriesDoesNotDivideByZero) {
  const std::vector<double> xs{1, 2, 3};
  const std::vector<double> ys{5, 5, 5};
  EXPECT_NO_THROW(render_xy_series("t", "x", "y", xs, ys, false));
}

}  // namespace
}  // namespace memstress
