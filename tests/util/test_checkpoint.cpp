#include "util/checkpoint.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/chaos.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace memstress::checkpoint {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test; removed on exit.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    dir_ = fs::temp_directory_path() /
           ("memstress_ckpt_test_" + tag + "_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  fs::path dir_;
};

/// Captures log output for one scope (the warn-once assertions).
class LogCapture {
 public:
  LogCapture() {
    set_log_sink([this](LogLevel, const std::string& message) {
      messages_.push_back(message);
    });
  }
  ~LogCapture() { set_log_sink({}); }
  const std::vector<std::string>& messages() const { return messages_; }

 private:
  std::vector<std::string> messages_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(Crc32, MatchesKnownVectors) {
  // The IEEE 802.3 / zlib check value for "123456789".
  EXPECT_EQ(crc32(std::string("123456789")), 0xcbf43926u);
  EXPECT_EQ(crc32(std::string("")), 0u);
  EXPECT_NE(crc32(std::string("a")), crc32(std::string("b")));
}

TEST(Checkpoint, AtomicWriteCreatesAndReplaces) {
  ScratchDir scratch("atomic");
  const std::string path = scratch.path("file.txt");
  write_file_atomic(path, "first\n");
  EXPECT_EQ(read_file(path), "first\n");
  write_file_atomic(path, "second\n");
  EXPECT_EQ(read_file(path), "second\n");
  // No temp droppings left next to the target.
  std::size_t files = 0;
  for ([[maybe_unused]] const auto& entry :
       fs::directory_iterator(fs::path(path).parent_path()))
    ++files;
  EXPECT_EQ(files, 1u);
}

TEST(Checkpoint, SaveLoadRoundtrip) {
  ScratchDir scratch("roundtrip");
  const std::string path = scratch.path("state.ckpt");
  const std::string payload = "header 1\n0 1\n1 0\n2 Q 3 singular matrix\n";
  save(path, payload);
  const auto loaded = load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, payload);
  // Empty payload roundtrips too (a run checkpointed before any progress).
  save(path, "");
  ASSERT_TRUE(load(path).has_value());
  EXPECT_EQ(*load(path), "");
}

TEST(Checkpoint, SaveRejectsUnterminatedPayload) {
  ScratchDir scratch("unterminated");
  EXPECT_THROW(save(scratch.path("x.ckpt"), "no trailing newline"), Error);
}

TEST(Checkpoint, MissingFileIsSilentlyAbsent) {
  ScratchDir scratch("missing");
  LogCapture capture;
  EXPECT_FALSE(load(scratch.path("never_written.ckpt")).has_value());
  EXPECT_TRUE(capture.messages().empty());
}

TEST(Checkpoint, TruncatedFileWarnsOnceAndRestartsClean) {
  ScratchDir scratch("truncated");
  const std::string path = scratch.path("state.ckpt");
  save(path, "line one\nline two\n");
  // Chop mid-footer, as an out-of-space or power-cut write would.
  const std::string full = read_file(path);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << full.substr(0, full.size() - 7);
  }
  LogCapture capture;
  EXPECT_FALSE(load(path).has_value());
  EXPECT_FALSE(load(path).has_value());  // second hit: warn-once, no repeat
  ASSERT_EQ(capture.messages().size(), 1u);
  EXPECT_NE(capture.messages()[0].find(path), std::string::npos);
  EXPECT_NE(capture.messages()[0].find("restarting from scratch"),
            std::string::npos);
}

TEST(Checkpoint, CrcMismatchWarnsAndRestartsClean) {
  ScratchDir scratch("crc");
  const std::string path = scratch.path("state.ckpt");
  save(path, "precious bits\n");
  // Flip one payload byte; the footer still parses but the CRC catches it.
  std::string full = read_file(path);
  full[2] = full[2] == 'x' ? 'y' : 'x';
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << full;
  }
  LogCapture capture;
  EXPECT_FALSE(load(path).has_value());
  ASSERT_EQ(capture.messages().size(), 1u);
  EXPECT_NE(capture.messages()[0].find("CRC mismatch"), std::string::npos);
}

TEST(Checkpoint, ForeignFileWarnsAndRestartsClean) {
  ScratchDir scratch("foreign");
  const std::string path = scratch.path("state.ckpt");
  {
    std::ofstream out(path, std::ios::binary);
    out << "kind,category,resistance\nnot,a,checkpoint\n";
  }
  LogCapture capture;
  EXPECT_FALSE(load(path).has_value());
  ASSERT_EQ(capture.messages().size(), 1u);
  EXPECT_NE(capture.messages()[0].find("footer"), std::string::npos);
}

TEST(Checkpoint, ShortPayloadAgainstFooterSizeIsRejected) {
  ScratchDir scratch("short");
  const std::string path = scratch.path("state.ckpt");
  save(path, "0123456789\n");
  // Drop one payload line-prefix byte but keep a parseable footer: the
  // byte count in the footer no longer matches.
  std::string full = read_file(path);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << full.substr(1);
  }
  LogCapture capture;
  EXPECT_FALSE(load(path).has_value());
  ASSERT_EQ(capture.messages().size(), 1u);
  EXPECT_NE(capture.messages()[0].find("footer says"), std::string::npos);
}

TEST(Checkpoint, DefaultPathFollowsEnv) {
  const char* saved = std::getenv("MEMSTRESS_CHECKPOINT_DIR");
  const std::string saved_value = saved ? saved : "";
  ::unsetenv("MEMSTRESS_CHECKPOINT_DIR");
  EXPECT_EQ(default_path("job"), "");
  ::setenv("MEMSTRESS_CHECKPOINT_DIR", "/tmp/ckpts", 1);
  EXPECT_EQ(default_path("job"), "/tmp/ckpts/job.ckpt");
  if (saved)
    ::setenv("MEMSTRESS_CHECKPOINT_DIR", saved_value.c_str(), 1);
  else
    ::unsetenv("MEMSTRESS_CHECKPOINT_DIR");
}

TEST(CheckpointDeath, CrashBeforeRenameLeavesTargetUntouched) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  ScratchDir scratch("crash");
  const std::string path = scratch.path("state.ckpt");
  // Write the baseline WITHOUT checkpoint::save: save() passes through the
  // crash point, and the first crash_point call freezes the (lazily parsed)
  // crash config — the death-test child must reach its setenv first.
  const std::string payload = "survives the crash\n";
  {
    char footer[64];
    std::snprintf(footer, sizeof footer, "#memstress-ckpt crc32=%08x size=%zu\n",
                  crc32(payload), payload.size());
    std::ofstream out(path, std::ios::binary);
    out << payload << footer;
  }
  ASSERT_EQ(load(path), payload);

  // The child is killed between writing the temp file and the rename; the
  // target must still hold the old complete snapshot.
  EXPECT_EXIT(
      {
        ::setenv("MEMSTRESS_CHAOS_CRASH", "checkpoint.before_rename:1", 1);
        save(path, "half-written replacement\n");
        std::_Exit(0);  // never reached
      },
      testing::ExitedWithCode(chaos::kCrashExitCode), "simulated crash");
  EXPECT_EQ(load(path), payload);
}

}  // namespace
}  // namespace memstress::checkpoint
