#include "util/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "util/log.hpp"
#include "util/parallel.hpp"

namespace memstress {
namespace {

/// Sets one environment variable for a test and restores it afterwards.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_value_ = old != nullptr;
    if (old) saved_ = old;
    if (value)
      ::setenv(name, value, 1);
    else
      ::unsetenv(name);
  }
  ~EnvGuard() {
    if (had_value_)
      ::setenv(name_.c_str(), saved_.c_str(), 1);
    else
      ::unsetenv(name_.c_str());
  }

 private:
  std::string name_;
  std::string saved_;
  bool had_value_ = false;
};

/// Captures log_warn output for the lifetime of the object.
class WarnCapture {
 public:
  WarnCapture() {
    set_log_sink([this](LogLevel level, const std::string& message) {
      if (level >= LogLevel::Warn) warnings_.push_back(message);
    });
  }
  ~WarnCapture() { set_log_sink({}); }

  const std::vector<std::string>& warnings() const { return warnings_; }
  bool saw(const std::string& needle) const {
    for (const auto& w : warnings_)
      if (w.find(needle) != std::string::npos) return true;
    return false;
  }

 private:
  std::vector<std::string> warnings_;
};

constexpr const char* kKnob = "MEMSTRESS_TEST_KNOB";

TEST(EnvParsing, UnsetIntIsSilentFallback) {
  EnvGuard env(kKnob, nullptr);
  WarnCapture capture;
  EXPECT_EQ(env_int_or(kKnob, 1, 100, 42), 42);
  EXPECT_TRUE(capture.warnings().empty());
}

TEST(EnvParsing, ValidIntPassesThrough) {
  EnvGuard env(kKnob, "17");
  WarnCapture capture;
  EXPECT_EQ(env_int_or(kKnob, 1, 100, 42), 17);
  EXPECT_TRUE(capture.warnings().empty());
}

TEST(EnvParsing, GarbageIntWarnsAndFallsBack) {
  EnvGuard env(kKnob, "over9000!");
  WarnCapture capture;
  EXPECT_EQ(env_int_or(kKnob, 1, 100, 42), 42);
  EXPECT_TRUE(capture.saw(kKnob));
  EXPECT_TRUE(capture.saw("over9000!"));
}

TEST(EnvParsing, NegativeIntWarnsAndFallsBack) {
  EnvGuard env(kKnob, "-12");
  WarnCapture capture;
  EXPECT_EQ(env_int_or(kKnob, 1, 100, 42), 42);
  EXPECT_TRUE(capture.saw("-12"));
}

TEST(EnvParsing, HugeIntWarnsAndFallsBack) {
  // Far beyond both the knob range and what strtol can represent.
  EnvGuard env(kKnob, "999999999999999999999999");
  WarnCapture capture;
  EXPECT_EQ(env_int_or(kKnob, 1, 100, 42), 42);
  EXPECT_TRUE(capture.saw(kKnob));
}

TEST(EnvParsing, TrailingJunkWarnsAndFallsBack) {
  EnvGuard env(kKnob, "8 threads");
  WarnCapture capture;
  EXPECT_EQ(env_int_or(kKnob, 1, 100, 42), 42);
  EXPECT_TRUE(capture.saw("8 threads"));
}

TEST(EnvParsing, RepeatedBadValueWarnsOnlyOnce) {
  EnvGuard env(kKnob, "once-only");
  WarnCapture capture;
  env_int_or(kKnob, 1, 100, 42);
  env_int_or(kKnob, 1, 100, 42);
  int count = 0;
  for (const auto& w : capture.warnings())
    if (w.find("once-only") != std::string::npos) ++count;
  EXPECT_EQ(count, 1);
}

TEST(EnvParsing, BoolAcceptsCommonSpellings) {
  WarnCapture capture;
  for (const char* yes : {"1", "true", "TRUE", "on", "Yes"}) {
    EnvGuard env(kKnob, yes);
    EXPECT_TRUE(env_bool_or(kKnob, false)) << yes;
  }
  for (const char* no : {"0", "false", "off", "NO"}) {
    EnvGuard env(kKnob, no);
    EXPECT_FALSE(env_bool_or(kKnob, true)) << no;
  }
  EXPECT_TRUE(capture.warnings().empty());
}

TEST(EnvParsing, BoolGarbageWarnsAndFallsBack) {
  EnvGuard env(kKnob, "maybe?");
  WarnCapture capture;
  EXPECT_FALSE(env_bool_or(kKnob, false));
  EXPECT_TRUE(env_bool_or(kKnob, true));
  EXPECT_TRUE(capture.saw("maybe?"));
}

TEST(EnvParsing, BoolUnsetIsSilentFallback) {
  EnvGuard env(kKnob, nullptr);
  WarnCapture capture;
  EXPECT_TRUE(env_bool_or(kKnob, true));
  EXPECT_FALSE(env_bool_or(kKnob, false));
  EXPECT_TRUE(capture.warnings().empty());
}

TEST(EnvParsing, UnsetStringIsSilentFallback) {
  EnvGuard env(kKnob, nullptr);
  WarnCapture capture;
  EXPECT_EQ(env_string_or(kKnob, "127.0.0.1"), "127.0.0.1");
  EXPECT_TRUE(capture.warnings().empty());
}

TEST(EnvParsing, SetStringPassesThroughVerbatim) {
  // Strings are not parsed: anything non-blank is the caller's business,
  // including values that would be garbage for an int knob.
  WarnCapture capture;
  for (const char* value : {"0.0.0.0", "::1", "host.example", " padded "}) {
    EnvGuard env(kKnob, value);
    EXPECT_EQ(env_string_or(kKnob, "fallback"), value);
  }
  EXPECT_TRUE(capture.warnings().empty());
}

TEST(EnvParsing, BlankStringWarnsAndFallsBack) {
  // A dedicated variable: warn-once state is global per (name, value), and
  // kKnob="" is consumed by the repeat-count test below.
  constexpr const char* kBlankKnob = "MEMSTRESS_TEST_KNOB_BLANK";
  EnvGuard env(kBlankKnob, "");
  WarnCapture capture;
  EXPECT_EQ(env_string_or(kBlankKnob, "127.0.0.1"), "127.0.0.1");
  EXPECT_TRUE(capture.saw(kBlankKnob));
}

TEST(EnvParsing, WhitespaceOnlyStringWarnsAndFallsBack) {
  EnvGuard env(kKnob, " \t ");
  WarnCapture capture;
  EXPECT_EQ(env_string_or(kKnob, "default"), "default");
  EXPECT_TRUE(capture.saw(kKnob));
}

TEST(EnvParsing, RepeatedBlankStringWarnsOnlyOnce) {
  EnvGuard env(kKnob, "");
  WarnCapture capture;
  env_string_or(kKnob, "a");
  env_string_or(kKnob, "a");
  int count = 0;
  for (const auto& w : capture.warnings())
    if (w.find(kKnob) != std::string::npos) ++count;
  EXPECT_EQ(count, 1);
}

TEST(ParallelConfig, GarbageThreadsEnvWarns) {
  EnvGuard env("MEMSTRESS_THREADS", "lots-please");
  WarnCapture capture;
  EXPECT_GE(default_thread_count(), 1);
  EXPECT_TRUE(capture.saw("MEMSTRESS_THREADS"));
  EXPECT_TRUE(capture.saw("lots-please"));
}

TEST(ParallelConfig, HugeThreadsEnvWarnsAndUsesDefault) {
  EnvGuard env("MEMSTRESS_THREADS", "100000");
  WarnCapture capture;
  const int threads = default_thread_count();
  EXPECT_GE(threads, 1);
  EXPECT_LE(threads, 4096);
  EXPECT_TRUE(capture.saw("100000"));
}

TEST(ParallelConfig, NegativeThreadsEnvWarnsAndUsesDefault) {
  EnvGuard env("MEMSTRESS_THREADS", "-8");
  WarnCapture capture;
  EXPECT_GE(default_thread_count(), 1);
  EXPECT_TRUE(capture.saw("-8"));
}

}  // namespace
}  // namespace memstress
