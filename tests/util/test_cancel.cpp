#include "util/cancel.hpp"

#include <gtest/gtest.h>

#include <csignal>
#include <thread>
#include <vector>

namespace memstress {
namespace {

TEST(CancelToken, StartsClearTripsAndResets) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.request_cancel();
  EXPECT_TRUE(token.cancelled());
  token.request_cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
  token.reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelToken, RequestedSeesEitherToken) {
  cancel::process_token().reset();
  CancelToken job;
  EXPECT_FALSE(cancel::requested(&job));
  EXPECT_FALSE(cancel::requested(nullptr));

  job.request_cancel();
  EXPECT_TRUE(cancel::requested(&job));
  EXPECT_FALSE(cancel::requested(nullptr));  // process token untouched
  job.reset();

  cancel::process_token().request_cancel();
  EXPECT_TRUE(cancel::requested(&job));
  EXPECT_TRUE(cancel::requested(nullptr));
  cancel::process_token().reset();
}

TEST(CancelToken, VisibleAcrossThreads) {
  CancelToken token;
  std::thread tripper([&token] { token.request_cancel(); });
  tripper.join();
  EXPECT_TRUE(token.cancelled());
}

TEST(CancelToken, SigintTripsProcessToken) {
  // The handler is one-shot (a second ^C must be able to kill a wedged
  // run), so this is the only test allowed to raise SIGINT.
  cancel::process_token().reset();
  cancel::install_sigint_handler();
  ASSERT_EQ(std::raise(SIGINT), 0);
  EXPECT_TRUE(cancel::process_token().cancelled());
  cancel::process_token().reset();
}

TEST(CancelledError, IsAnError) {
  const CancelledError e("stopped");
  EXPECT_STREQ(e.what(), "stopped");
  const Error* base = &e;
  EXPECT_NE(base, nullptr);
}

}  // namespace
}  // namespace memstress
