#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace memstress {
namespace {

/// RAII guard that sets MEMSTRESS_THREADS for one test and restores the
/// previous value on exit.
class ThreadsEnvGuard {
 public:
  explicit ThreadsEnvGuard(const char* value) {
    const char* old = std::getenv("MEMSTRESS_THREADS");
    if (old) saved_ = old;
    had_value_ = old != nullptr;
    if (value)
      ::setenv("MEMSTRESS_THREADS", value, 1);
    else
      ::unsetenv("MEMSTRESS_THREADS");
  }
  ~ThreadsEnvGuard() {
    if (had_value_)
      ::setenv("MEMSTRESS_THREADS", saved_.c_str(), 1);
    else
      ::unsetenv("MEMSTRESS_THREADS");
  }

 private:
  std::string saved_;
  bool had_value_ = false;
};

TEST(ParallelConfig, EnvOverrideWins) {
  ThreadsEnvGuard guard("3");
  EXPECT_EQ(default_thread_count(), 3);
  EXPECT_EQ(resolve_thread_count(0), 3);
}

TEST(ParallelConfig, ExplicitRequestBeatsEnv) {
  ThreadsEnvGuard guard("3");
  EXPECT_EQ(resolve_thread_count(7), 7);
  EXPECT_EQ(resolve_thread_count(1), 1);
}

TEST(ParallelConfig, GarbageEnvFallsBackToHardware) {
  ThreadsEnvGuard guard("not-a-number");
  EXPECT_GE(default_thread_count(), 1);
}

TEST(ParallelConfig, NonPositiveEnvFallsBackToHardware) {
  ThreadsEnvGuard guard("0");
  EXPECT_GE(default_thread_count(), 1);
  ThreadsEnvGuard negative("-4");
  EXPECT_GE(default_thread_count(), 1);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  ThreadPool pool(4);
  pool.parallel_for(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(4);
  for (int round = 0; round < 5; ++round) {
    std::atomic<long> sum{0};
    pool.parallel_for(100, [&](std::size_t i) {
      sum.fetch_add(static_cast<long>(i));
    });
    EXPECT_EQ(sum.load(), 99 * 100 / 2);
  }
}

TEST(ThreadPool, SerialFallbackRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  pool.parallel_for(8, [&](std::size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, EmptyAndSingleRangesWork) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](std::size_t i) {
                          if (i == 13) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool survives a failed job and runs the next one cleanly.
  std::atomic<int> ok{0};
  pool.parallel_for(16, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 16);
}

TEST(ParallelFor, MatchesSerialResultOrdering) {
  constexpr std::size_t kCount = 500;
  std::vector<double> serial(kCount), parallel(kCount);
  const auto f = [](std::size_t i) {
    return static_cast<double>(i) * 1.5 + 1.0 / (1.0 + static_cast<double>(i));
  };
  for (std::size_t i = 0; i < kCount; ++i) serial[i] = f(i);
  parallel_for(kCount, [&](std::size_t i) { parallel[i] = f(i); }, 8);
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelFor, ExceptionPropagatesFromTransientPool) {
  EXPECT_THROW(parallel_for(32,
                            [](std::size_t i) {
                              if (i == 7) throw std::runtime_error("boom");
                            },
                            4),
               std::runtime_error);
}

TEST(ThreadPool, FailFastBoundsWorkAfterFirstThrow) {
  // After the first body exception, workers must stop claiming AND stop
  // executing claimed-but-unstarted tasks: at most one in-flight task per
  // worker runs to completion after the throw. Without the abandon flag the
  // whole 100k range would still execute.
  constexpr int kThreads = 4;
  constexpr std::size_t kCount = 100000;
  ThreadPool pool(kThreads);
  std::atomic<bool> thrown{false};
  std::atomic<long> started_after_throw{0};
  std::atomic<long> executed{0};
  EXPECT_THROW(
      pool.parallel_for(kCount,
                        [&](std::size_t i) {
                          if (i == 0) {
                            // Let other workers get busy, then fail.
                            std::this_thread::sleep_for(
                                std::chrono::milliseconds(2));
                            thrown.store(true);
                            throw std::runtime_error("boom");
                          }
                          if (thrown.load()) started_after_throw.fetch_add(1);
                          executed.fetch_add(1);
                          // Each task outlasts the thrown->abandon window by
                          // orders of magnitude, so no worker can start two
                          // tasks inside it.
                          std::this_thread::sleep_for(
                              std::chrono::microseconds(200));
                        }),
      std::runtime_error);
  EXPECT_LE(started_after_throw.load(), kThreads);
  EXPECT_LT(executed.load(), static_cast<long>(kCount) / 2);
}

TEST(ThreadPool, ExternalCancelThrowsCancelledError) {
  ThreadPool pool(4);
  CancelToken token;
  std::atomic<long> executed{0};
  EXPECT_THROW(
      pool.parallel_for(100000,
                        [&](std::size_t) {
                          if (executed.fetch_add(1) + 1 == 8)
                            token.request_cancel();
                          std::this_thread::sleep_for(
                              std::chrono::microseconds(50));
                        },
                        &token),
      CancelledError);
  // Cooperative: the tripped token stopped the range well short of done.
  EXPECT_LT(executed.load(), 100000);
  // The pool survives a cancelled job and runs the next one cleanly.
  std::atomic<int> ok{0};
  pool.parallel_for(16, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 16);
}

TEST(ThreadPool, PreCancelledTokenRunsNoTasks) {
  ThreadPool pool(4);
  CancelToken token;
  token.request_cancel();
  std::atomic<int> executed{0};
  EXPECT_THROW(
      pool.parallel_for(64, [&](std::size_t) { executed.fetch_add(1); },
                        &token),
      CancelledError);
  EXPECT_EQ(executed.load(), 0);
}

TEST(ParallelFor, SerialPathHonoursCancelToken) {
  CancelToken token;
  int executed = 0;
  EXPECT_THROW(parallel_for(100,
                            [&](std::size_t i) {
                              ++executed;
                              if (i == 9) token.request_cancel();
                            },
                            1, &token),
               CancelledError);
  // Serial semantics: the task that tripped the token finishes, the next
  // boundary check stops the loop.
  EXPECT_EQ(executed, 10);
}

TEST(ParallelFor, ProcessTokenCancelsEveryJob) {
  cancel::process_token().reset();
  std::atomic<int> executed{0};
  EXPECT_THROW(parallel_for(1000,
                            [&](std::size_t i) {
                              executed.fetch_add(1);
                              if (i == 3) cancel::process_token().request_cancel();
                            },
                            1),
               CancelledError);
  cancel::process_token().reset();
  EXPECT_LT(executed.load(), 1000);
}

TEST(ParallelFor, BodyExceptionBeatsConcurrentCancel) {
  // When a task throws and the token also trips, the caller sees the real
  // error, not the cancellation.
  CancelToken token;
  EXPECT_THROW(parallel_for(64,
                            [&](std::size_t i) {
                              if (i == 5) {
                                token.request_cancel();
                                throw std::runtime_error("real failure");
                              }
                            },
                            4, &token),
               std::runtime_error);
}

}  // namespace
}  // namespace memstress
