#include "util/metrics.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "util/parallel.hpp"

namespace memstress::metrics {
namespace {

/// Every test leaves the process with metrics disabled and zeroed so the
/// other suites in this binary (and their ordering) see a clean slate.
class MetricsGuard {
 public:
  MetricsGuard() {
    set_enabled(true);
    reset();
  }
  ~MetricsGuard() {
    reset();
    set_enabled(false);
  }
};

TEST(MetricsCounters, DisabledAddIsANoop) {
  MetricsGuard guard;
  set_enabled(false);
  Counter& c = counter("test.disabled_noop");
  c.add(5);
  EXPECT_EQ(c.value(), 0);
}

TEST(MetricsCounters, EnabledAddAccumulates) {
  MetricsGuard guard;
  Counter& c = counter("test.enabled_adds");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(MetricsCounters, SameNameReturnsSameHandle) {
  MetricsGuard guard;
  EXPECT_EQ(&counter("test.same_handle"), &counter("test.same_handle"));
  EXPECT_NE(&counter("test.same_handle"), &counter("test.other_handle"));
}

TEST(MetricsCounters, HandleSurvivesReset) {
  MetricsGuard guard;
  Counter& c = counter("test.reset_survivor");
  c.add(7);
  reset();
  EXPECT_EQ(c.value(), 0);
  c.add(3);
  EXPECT_EQ(c.value(), 3);
  EXPECT_EQ(&c, &counter("test.reset_survivor"));
}

TEST(MetricsThreaded, CountsAreExactUnderContention) {
  MetricsGuard guard;
  Counter& c = counter("test.threaded_exact");
  ThreadPool pool(8);
  pool.parallel_for(10000, [&](std::size_t) { c.add(1); });
  EXPECT_EQ(c.value(), 10000);
}

TEST(MetricsThreaded, TotalsInvariantAcrossThreadCounts) {
  MetricsGuard guard;
  Counter& c = counter("test.threaded_invariant");
  std::vector<long long> totals;
  for (const int threads : {1, 2, 8}) {
    reset();
    parallel_for(513, [&](std::size_t i) { c.add(static_cast<long long>(i)); },
                 threads);
    totals.push_back(c.value());
  }
  EXPECT_EQ(totals[0], totals[1]);
  EXPECT_EQ(totals[0], totals[2]);
  EXPECT_EQ(totals[0], 512 * 513 / 2);
}

TEST(MetricsHistogram, TracksCountSumMinMax) {
  MetricsGuard guard;
  Histogram& h = histogram("test.histogram_stats");
  for (const double v : {3.0, 1.0, 2.0}) h.record(v);
  const Histogram::Snapshot stats = h.snapshot();
  EXPECT_EQ(stats.count, 3);
  EXPECT_DOUBLE_EQ(stats.sum, 6.0);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 3.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.0);
}

TEST(MetricsHistogram, DisabledRecordIsANoop) {
  MetricsGuard guard;
  set_enabled(false);
  Histogram& h = histogram("test.histogram_disabled");
  h.record(1.0);
  EXPECT_EQ(h.snapshot().count, 0);
}

TEST(MetricsReport, CollectSkipsZeroValues) {
  MetricsGuard guard;
  counter("test.report_zero");
  counter("test.report_nonzero").add(2);
  const RunReport report = collect();
  bool saw_nonzero = false;
  for (const auto& c : report.counters) {
    EXPECT_NE(c.name, "test.report_zero");
    if (c.name == "test.report_nonzero") {
      saw_nonzero = true;
      EXPECT_EQ(c.value, 2);
    }
  }
  EXPECT_TRUE(saw_nonzero);
}

TEST(MetricsReport, JsonCarriesCountersAndHistograms) {
  MetricsGuard guard;
  counter("test.json_counter").add(11);
  histogram("test.json_histogram").record(0.5);
  const std::string json = collect().to_json();
  EXPECT_NE(json.find("\"test.json_counter\":11"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"spans\":["), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(MetricsReport, TableRendersCounterRows) {
  MetricsGuard guard;
  counter("test.table_counter").add(4);
  const std::string table = collect().to_table();
  EXPECT_NE(table.find("RunReport"), std::string::npos);
  EXPECT_NE(table.find("test.table_counter"), std::string::npos);
  EXPECT_NE(table.find("4"), std::string::npos);
}

TEST(MetricsReport, EmptyReportExplainsTheToggle) {
  MetricsGuard guard;
  reset();
  const std::string table = collect().to_table();
  EXPECT_NE(table.find("MEMSTRESS_METRICS"), std::string::npos);
}

TEST(MetricsHistogram, QuantilesFromLogBucketsBracketTheTruth) {
  MetricsGuard guard;
  Histogram& h = histogram("test.quantiles");
  // 1000 samples 1ms..1000ms: true p50 = 500ms, p99 = 990ms. Log buckets
  // give ~15% relative resolution — assert the estimates land in a window,
  // and the clamp pins the exact extremes.
  for (int i = 1; i <= 1000; ++i) h.record(i * 1e-3);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1000);
  EXPECT_NEAR(s.quantile(0.5), 0.5, 0.15);
  EXPECT_NEAR(s.quantile(0.99), 0.99, 0.25);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), s.min);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), s.max);
  EXPECT_GE(s.quantile(0.999), s.quantile(0.99));
  EXPECT_GE(s.quantile(0.99), s.quantile(0.5));
}

TEST(MetricsHistogram, SingleSampleAnswersExactlyAtEveryQuantile) {
  MetricsGuard guard;
  Histogram& h = histogram("test.quantile_single");
  h.record(0.125);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.125);   // clamped to [min, max]
  EXPECT_DOUBLE_EQ(s.quantile(0.999), 0.125);
  EXPECT_DOUBLE_EQ(Histogram::Snapshot{}.quantile(0.5), 0.0);  // empty
}

TEST(MetricsReport, JsonHistogramsCarryQuantileFields) {
  MetricsGuard guard;
  histogram("test.json_quantiles").record(0.5);
  const std::string json = collect().to_json();
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_NE(json.find("\"p999\":"), std::string::npos);
}

TEST(MetricsStream, EmitsSelfContainedNdjsonLines) {
  MetricsGuard guard;
  const std::string path =
      ::testing::TempDir() + "metrics_stream_test.ndjson";
  std::remove(path.c_str());
  set_stream_target(path);
  ASSERT_TRUE(stream_configured());
  counter("test.stream_counter").add(3);
  EXPECT_TRUE(emit_stream_snapshot("phase-a"));
  EXPECT_TRUE(emit_stream_snapshot());
  set_stream_target("");  // disable + close
  EXPECT_FALSE(stream_configured());
  EXPECT_FALSE(emit_stream_snapshot());

  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("{\"stream\":\"metrics\",\"seq\":1,"),
            std::string::npos);
  EXPECT_NE(lines[0].find("\"label\":\"phase-a\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"test.stream_counter\":3"), std::string::npos);
  EXPECT_NE(lines[1].find("\"seq\":2,"), std::string::npos);
  EXPECT_EQ(lines[1].find("\"label\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(MetricsStream, StreamerEmitsPeriodicAndFinalSnapshots) {
  MetricsGuard guard;
  const std::string path =
      ::testing::TempDir() + "metrics_streamer_test.ndjson";
  std::remove(path.c_str());
  set_stream_target(path);
  counter("test.streamer_counter").add(1);
  {
    SnapshotStreamer streamer(20, "soak");
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
  }  // destructor emits the final snapshot
  set_stream_target("");

  std::ifstream in(path);
  std::string line;
  std::size_t count = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"label\":\"soak\""), std::string::npos);
    ++count;
  }
  EXPECT_GE(count, 2u);  // at least one periodic tick plus the final one
  std::remove(path.c_str());
}

}  // namespace
}  // namespace memstress::metrics
